// Tests for the discrete-event simulator: ordering, cancellation, timers.

#include <gtest/gtest.h>

#include <vector>

#include "iq/sim/event_queue.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/sim/timer.hpp"

namespace iq::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::from_ns(30), [&] { order.push_back(3); });
  q.schedule(TimePoint::from_ns(10), [&] { order.push_back(1); });
  q.schedule(TimePoint::from_ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimePoint::from_ns(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(TimePoint::from_ns(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // double cancel
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::from_ns(1), [&] { order.push_back(1); });
  const EventId id =
      q.schedule(TimePoint::from_ns(2), [&] { order.push_back(2); });
  q.schedule(TimePoint::from_ns(3), [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint::from_ns(1), [] {});
  q.schedule(TimePoint::from_ns(9), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), TimePoint::from_ns(9));
}

// Regression: cancelling an event that already fired used to decrement the
// live count anyway, eventually making the queue report empty while events
// were still pending. Stale handles must be rejected outright.
TEST(EventQueueTest, CancelAfterFireRejected) {
  EventQueue q;
  const EventId fired = q.schedule(TimePoint::from_ns(1), [] {});
  q.schedule(TimePoint::from_ns(2), [] {});
  q.pop().fn();  // `fired` executes
  EXPECT_FALSE(q.cancel(fired));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DoubleCancelDoesNotCorruptCount) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint::from_ns(1), [] {});
  q.schedule(TimePoint::from_ns(2), [] {});
  q.schedule(TimePoint::from_ns(3), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 2u);
  int popped = 0;
  while (!q.empty()) {
    q.pop();
    ++popped;
  }
  EXPECT_EQ(popped, 2);
}

// A stale handle whose slot has been reused by a newer event must not
// cancel the newer event.
TEST(EventQueueTest, StaleHandleCannotCancelReusedSlot) {
  EventQueue q;
  const EventId old_id = q.schedule(TimePoint::from_ns(1), [] {});
  q.pop();  // frees the slot
  bool ran = false;
  q.schedule(TimePoint::from_ns(2), [&] { ran = true; });
  EXPECT_FALSE(q.cancel(old_id));
  ASSERT_FALSE(q.empty());
  q.pop().fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelOfGarbageIdsRejected) {
  EventQueue q;
  q.schedule(TimePoint::from_ns(1), [] {});
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(0xffffffffffffffffull));
  EXPECT_EQ(q.size(), 1u);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  TimePoint seen;
  sim.after(Duration::millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::zero() + Duration::millis(5));
  EXPECT_EQ(sim.now(), seen);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.after(Duration::millis(1), recurse);
  };
  sim.after(Duration::millis(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now().ns(), Duration::millis(5).ns());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, Duration::millis(10), [&] { ++count; });
  task.start();
  sim.run_until(TimePoint::zero() + Duration::millis(95));
  EXPECT_EQ(count, 9);
  EXPECT_EQ(sim.now(), TimePoint::zero() + Duration::millis(95));
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(TimePoint::zero() + Duration::seconds(3));
  EXPECT_EQ(sim.now().to_seconds(), 3.0);
}

TEST(SimulatorTest, EventBudgetStopsRunaway) {
  Simulator sim;
  std::function<void()> forever = [&] {
    sim.after(Duration::nanos(1), forever);
  };
  sim.after(Duration::nanos(1), forever);
  sim.set_event_budget(1000);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 1000u);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int count = 0;
  sim.after(Duration::millis(1), [&] { ++count; });
  sim.after(Duration::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(TimerTest, FiresOnceAtExpiry) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.start(Duration::millis(7));
  EXPECT_TRUE(t.pending());
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.pending());
}

TEST(TimerTest, RestartReplacesPending) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.start(Duration::millis(5));
  t.start(Duration::millis(20));
  sim.run_until(TimePoint::zero() + Duration::millis(10));
  EXPECT_EQ(fires, 0);
  sim.run();
  EXPECT_EQ(fires, 1);
}

TEST(TimerTest, StartIfIdleDoesNotRestart) {
  Simulator sim;
  Timer t(sim, [] {});
  t.start(Duration::millis(5));
  const TimePoint expiry = t.expiry();
  t.start_if_idle(Duration::millis(50));
  EXPECT_EQ(t.expiry(), expiry);
}

TEST(TimerTest, StopCancels) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.start(Duration::millis(5));
  t.stop();
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, DestructionCancels) {
  Simulator sim;
  int fires = 0;
  {
    Timer t(sim, [&] { ++fires; });
    t.start(Duration::millis(5));
  }
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, RestartableFromCallback) {
  Simulator sim;
  int fires = 0;
  Timer* ptr = nullptr;
  Timer t(sim, [&] {
    if (++fires < 3) ptr->start(Duration::millis(1));
  });
  ptr = &t;
  t.start(Duration::millis(1));
  sim.run();
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTaskTest, FiresAtInterval) {
  Simulator sim;
  std::vector<std::int64_t> at;
  PeriodicTask task(sim, Duration::millis(10),
                    [&] { at.push_back(sim.now().ns()); });
  task.start();
  sim.run_until(TimePoint::zero() + Duration::millis(35));
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], Duration::millis(10).ns());
  EXPECT_EQ(at[2], Duration::millis(30).ns());
}

TEST(PeriodicTaskTest, FireNowStartsImmediately) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, Duration::millis(10), [&] { ++count; });
  task.start(/*fire_now=*/true);
  sim.run_until(TimePoint::zero() + Duration::millis(5));
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTaskTest, CallbackCanStopTask) {
  Simulator sim;
  int count = 0;
  PeriodicTask* ptr = nullptr;
  PeriodicTask task(sim, Duration::millis(1), [&] {
    if (++count == 4) ptr->stop();
  });
  ptr = &task;
  task.start();
  sim.run_until(TimePoint::zero() + Duration::seconds(1));
  EXPECT_EQ(count, 4);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace iq::sim
