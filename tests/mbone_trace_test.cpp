// Membership-churn edge cases: MboneTrace driving GroupMembership through
// the transitions that bite a fan-out scenario — the same subscriber leaving
// and rejoining within one epoch, the group emptying entirely, and
// fixed-seed replay determinism of the full churn sequence.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "iq/workload/mbone_trace.hpp"
#include "iq/workload/membership.hpp"

namespace iq::workload {
namespace {

// Record churn as "+3"/"-3" strings so sequences compare readably.
struct ChurnLog {
  std::vector<std::string> entries;
  GroupMembership::MemberFn join() {
    return [this](std::size_t s) { entries.push_back("+" + std::to_string(s)); };
  }
  GroupMembership::MemberFn leave() {
    return [this](std::size_t s) { entries.push_back("-" + std::to_string(s)); };
  }
};

TEST(GroupMembershipTest, PrefixJoinsAscendingLeavesDescending) {
  ChurnLog log;
  GroupMembership m(8, log.join(), log.leave());
  m.advance_to(3);
  m.advance_to(1);
  EXPECT_EQ(log.entries,
            (std::vector<std::string>{"+0", "+1", "+2", "-2", "-1"}));
  EXPECT_EQ(m.active(), 1u);
  EXPECT_TRUE(m.is_member(0));
  EXPECT_FALSE(m.is_member(1));
  EXPECT_EQ(m.joins(), 3u);
  EXPECT_EQ(m.leaves(), 2u);
}

TEST(GroupMembershipTest, SameSubscriberLeaveAndRejoinWithinOneEpoch) {
  // The trace dips and recovers between two advance calls of the same
  // churn epoch: subscriber 2 must leave and rejoin (two callbacks, both
  // counted), not be elided.
  ChurnLog log;
  GroupMembership m(8, log.join(), log.leave());
  m.advance_to(3);
  log.entries.clear();
  m.advance_to(2);  // dip
  m.advance_to(3);  // recover
  EXPECT_EQ(log.entries, (std::vector<std::string>{"-2", "+2"}));
  EXPECT_EQ(m.joins(), 4u);
  EXPECT_EQ(m.leaves(), 1u);
}

TEST(GroupMembershipTest, GroupCanEmptyAndRefill) {
  ChurnLog log;
  GroupMembership m(4, log.join(), log.leave());
  m.advance_to(4);
  m.advance_to(0);  // empty-group interval
  EXPECT_EQ(m.active(), 0u);
  EXPECT_FALSE(m.is_member(0));
  m.advance_to(2);  // refill restarts from the prefix
  EXPECT_EQ(m.active(), 2u);
  EXPECT_EQ(log.entries.back(), "+1");
  EXPECT_EQ(m.joins(), 6u);
  EXPECT_EQ(m.leaves(), 4u);
}

TEST(GroupMembershipTest, TargetsClampToRoster) {
  GroupMembership m(3, nullptr, nullptr);
  m.advance_to(10);
  EXPECT_EQ(m.active(), 3u);
  EXPECT_EQ(m.joins(), 3u);
}

TEST(GroupMembershipTest, TraceWithEmptyIntervalsDrivesMembership) {
  // An explicit series that empties mid-way; min_group = 0 is legal when
  // the series is handed in directly.
  const MboneTrace trace(std::vector<int>{3, 5, 0, 0, 2, 6});
  ChurnLog log;
  GroupMembership m(8, log.join(), log.leave());
  std::uint64_t empty_samples = 0;
  for (std::size_t sec = 0; sec < trace.size(); ++sec) {
    m.advance_to_trace(trace, Duration::seconds(static_cast<std::int64_t>(sec)));
    if (m.active() == 0) ++empty_samples;
  }
  EXPECT_EQ(empty_samples, 2u);
  EXPECT_EQ(m.active(), 6u);
  // 3 + 2 joins to reach 5, 5 leaves to empty, 2 + 4 joins back up.
  EXPECT_EQ(m.joins(), 11u);
  EXPECT_EQ(m.leaves(), 5u);
}

TEST(GroupMembershipTest, TraceScaleClampsAndScales) {
  const MboneTrace trace(std::vector<int>{10});
  GroupMembership m(100, nullptr, nullptr);
  m.advance_to_trace(trace, Duration::zero(), 2.5);
  EXPECT_EQ(m.active(), 25u);
  GroupMembership small(4, nullptr, nullptr);
  small.advance_to_trace(trace, Duration::zero(), 2.5);
  EXPECT_EQ(small.active(), 4u);  // clamped to roster
}

TEST(GroupMembershipTest, FixedSeedReplayIsBitIdentical) {
  // The full churn sequence — every callback, in order — must replay
  // identically for a fixed trace seed. This is what makes the city-scale
  // digest meaningful.
  MboneTraceConfig cfg;
  cfg.seed = 0xfeed;
  cfg.min_group = 1;
  cfg.max_group = 40;
  auto run = [&cfg] {
    const MboneTrace trace(cfg);
    ChurnLog log;
    GroupMembership m(40, log.join(), log.leave());
    for (int sec = 0; sec < 120; ++sec) {
      m.advance_to_trace(trace, Duration::seconds(sec));
    }
    return log.entries;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(MboneTraceTest, MinGroupFloorReachableButNotCrossed) {
  // Traces used for churn honor their configured floor — relevant for the
  // "group never quite empties" configurations the scenario uses.
  MboneTraceConfig cfg;
  cfg.seed = 7;
  cfg.min_group = 1;
  cfg.max_group = 8;
  cfg.samples = 512;
  const MboneTrace t(cfg);
  EXPECT_GE(t.min_seen(), 1);
  EXPECT_LE(t.max_seen(), 8);
}

}  // namespace
}  // namespace iq::workload
