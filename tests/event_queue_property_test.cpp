// Randomized differential test of the indexed-heap EventQueue against a
// naive reference model.
//
// The reference keeps every scheduled event in a flat vector and scans for
// the earliest live (time, insertion-seq) entry on pop — obviously correct,
// O(n) per op. Random interleavings of schedule/cancel/pop across several
// seeds must produce the exact same firing order, the same cancel results,
// and the same live counts; equal-timestamp groups must fire FIFO.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "iq/common/rng.hpp"
#include "iq/sim/event_queue.hpp"

namespace iq::sim {
namespace {

/// Naive model: linear scan, no heap, no slot reuse.
class ReferenceQueue {
 public:
  std::size_t schedule(TimePoint at) {
    entries_.push_back({at, next_seq_++, true});
    return entries_.size() - 1;
  }

  bool cancel(std::size_t ref) {
    if (ref >= entries_.size() || !entries_[ref].alive) return false;
    entries_[ref].alive = false;
    return true;
  }

  std::size_t size() const {
    return static_cast<std::size_t>(
        std::count_if(entries_.begin(), entries_.end(),
                      [](const Entry& e) { return e.alive; }));
  }

  bool empty() const { return size() == 0; }

  /// Index (into the schedule order) of the earliest live entry.
  std::size_t pop() {
    std::size_t best = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].alive) continue;
      if (best == entries_.size() ||
          entries_[i].at < entries_[best].at ||
          (entries_[i].at == entries_[best].at &&
           entries_[i].seq < entries_[best].seq)) {
        best = i;
      }
    }
    entries_[best].alive = false;
    return best;
  }

  TimePoint at(std::size_t ref) const { return entries_[ref].at; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    bool alive;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

TEST(EventQueuePropertyTest, MatchesReferenceModel) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99991ull}) {
    Rng rng(seed);
    EventQueue q;
    ReferenceQueue ref;

    // Both sides tag events with the schedule-order index; popping must
    // yield identical tag sequences.
    std::vector<std::size_t> real_fired;
    std::vector<std::size_t> model_fired;
    std::vector<EventId> ids;        // schedule order -> handle
    std::vector<std::size_t> refs;   // schedule order -> model ref
    std::size_t scheduled = 0;

    for (int op = 0; op < 20'000; ++op) {
      const double roll = rng.uniform01();
      if (roll < 0.5 || ref.empty()) {
        // Coarse timestamps force plenty of equal-time collisions so the
        // FIFO tie-break is actually exercised.
        const auto at =
            TimePoint::from_ns(rng.uniform_int(0, 499));
        const std::size_t tag = scheduled++;
        ids.push_back(q.schedule(at, [&real_fired, tag] {
          real_fired.push_back(tag);
        }));
        refs.push_back(ref.schedule(at));
      } else if (roll < 0.8) {
        // Cancel a random handle — may be live, fired, or already
        // cancelled; results must agree either way.
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(ids.size()) - 1));
        EXPECT_EQ(q.cancel(ids[pick]), ref.cancel(refs[pick]));
      } else {
        ASSERT_FALSE(q.empty());
        auto popped = q.pop();
        const std::size_t model_tag = ref.pop();
        EXPECT_EQ(popped.at, ref.at(model_tag));
        popped.fn();
        model_fired.push_back(model_tag);
        ASSERT_EQ(real_fired.back(), model_tag)
            << "divergence at op " << op << " seed " << seed;
      }
      ASSERT_EQ(q.size(), ref.size()) << "size divergence at op " << op;
    }

    // Drain both completely.
    while (!q.empty()) {
      q.pop().fn();
      model_fired.push_back(ref.pop());
    }
    EXPECT_TRUE(ref.empty());
    ASSERT_EQ(real_fired, model_fired) << "seed " << seed;
  }
}

TEST(EventQueuePropertyTest, EqualTimestampsFireFifoUnderChurn) {
  Rng rng(5);
  EventQueue q;
  // Interleave schedules at a single timestamp with schedules/cancels at
  // other times; the single-timestamp group must still fire in insertion
  // order.
  std::vector<int> fired;
  std::vector<EventId> noise;
  int next_tag = 0;
  for (int round = 0; round < 200; ++round) {
    const int tag = next_tag++;
    q.schedule(TimePoint::from_ns(1000), [&fired, tag] {
      fired.push_back(tag);
    });
    noise.push_back(q.schedule(
        TimePoint::from_ns(rng.uniform_int(0, 2000)), [] {}));
    if (round % 3 == 0 && !noise.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(noise.size()) - 1));
      q.cancel(noise[pick]);
    }
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(fired[i], i);
}

}  // namespace
}  // namespace iq::sim
