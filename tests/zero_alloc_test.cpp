// Steady-state allocation pinning: after warmup, a lossy RUDP transfer must
// run without touching the global heap — InlineVec keeps protocol lists
// inline, PooledMap/ObjectPool recycle nodes and segment bodies, the
// scheduler's InlineFn keeps callbacks in its inline buffer, and the wire
// pipe shares immutable pooled segment bodies. A regression in any of those
// layers shows up here as a nonzero allocation delta.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

// Replace the global allocation functions in this binary so every
// operator-new is counted (see bench_util.hpp).
#define IQ_COUNT_ALLOCS
#include "../bench/bench_util.hpp"
#include "iq/cm/manager.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/sim/timer_wheel.hpp"
#include "iq/wire/lossy_wire.hpp"

namespace iq::rudp {
namespace {

struct Transfer {
  sim::Simulator sim;
  wire::LossyWirePair pipe;
  RudpConnection sender;
  RudpConnection receiver;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t target = 0;

  static wire::LossyConfig lossy_config() {
    wire::LossyConfig l;
    l.drop_probability = 0.02;          // retransmission paths stay hot
    l.reorder_jitter = Duration::millis(2);  // eack/dup-ack paths stay hot
    l.seed = 7;
    return l;
  }

  static RudpConfig rudp_config() {
    RudpConfig cfg;
    // Cap eacks at the Segment::EackList inline capacity so ACK assembly
    // never spills. The default (64) would heap-allocate by design.
    cfg.max_eacks_per_ack = 16;
    return cfg;
  }

  Transfer()
      : pipe(sim, lossy_config()),
        sender(pipe.a(), rudp_config(), Role::Client),
        receiver(pipe.b(), rudp_config(), Role::Server) {
    receiver.set_message_handler(
        [this](const DeliveredMessage&) { ++delivered; });
    receiver.listen();
    sender.connect();
  }

  // Self-rescheduling pacer. A tiny trivially-copyable functor (one
  // pointer) so the scheduler stores it inline: the test harness itself
  // must not allocate in the measured phase.
  struct Pace {
    Transfer* t;
    void operator()() const {
      if (t->sent >= t->target) return;
      ++t->sent;
      t->sender.send_message({.bytes = 1000, .marked = true});
      t->sim.after(Duration::millis(2), Pace{t});
    }
  };

  /// Send `n` more paced messages and run until the pipe drains.
  void send_and_drain(std::uint64_t n) {
    target += n;
    sim.after(Duration::millis(1), Pace{this});
    sim.run_until(sim.now() + Duration::seconds(
                                  static_cast<std::int64_t>(n) / 100 + 10));
  }
};

TEST(ZeroAllocTest, SteadyStateLossyTransferDoesNotAllocate) {
  if (std::getenv("IQ_AUDIT") != nullptr) {
    GTEST_SKIP() << "IQ_AUDIT arms the flight recorder on every connection; "
                    "its event bookkeeping allocates by design, so the "
                    "zero-allocation pin only holds for the production path";
  }
  Transfer t;

  // Warmup: handshake, pool/arena growth to high water, first losses,
  // retransmissions, RTO timers — every steady-state path runs at least
  // once while allocation is still allowed. Capacity growth is high-water
  // driven (pool freelists, reorder backlog, delivery batches), so the
  // warmup must reach a *deeper* state than anything the measured phase
  // hits: a blackout forces a worst-case gap-repair episode (RTO backoff
  // chain, full-window reorder backlog, then a burst drain), and the long
  // tail of the warmup covers the rare multi-drop repair episodes that a
  // short warmup would first encounter during measurement.
  t.sim.after(Duration::millis(1500), [&t] { t.pipe.set_blackout(true); });
  t.sim.after(Duration::millis(3000), [&t] { t.pipe.set_blackout(false); });
  t.send_and_drain(10'000);
  ASSERT_TRUE(t.sender.established());
  const std::uint64_t warm_delivered = t.delivered;
  ASSERT_GT(warm_delivered, 9900u);  // losses are recovered, not lost

  // Measured phase: 10'000 more segments through the same lossy pipe.
  const std::uint64_t before = iq::bench::alloc_count();
  t.send_and_drain(10'000);
  const std::uint64_t allocs = iq::bench::alloc_count() - before;

  EXPECT_EQ(t.sent, 20'000u);
  EXPECT_GT(t.delivered, warm_delivered + 9900u);
  EXPECT_EQ(allocs, 0u) << "steady-state transfer touched the heap "
                        << allocs << " times";
}

// The timer-rearm hot path, pinned directly on the scheduler now backing
// sim::Simulator and the RealtimeLoop. Every ack rearms the RTO timer and
// every quiet interval rearms the keepalive, so at city scale the wheel
// absorbs one cancel+schedule pair per delivered segment: its slot pool,
// per-bucket intrusive lists and fire buffer must all be at high water
// after warmup and never touch the heap again. The lossy-transfer pins
// above cover the same path end to end (RudpConnection timers run through
// sim::Simulator's wheel); this one isolates the wheel so a regression
// points at the scheduler, not the transport.
TEST(ZeroAllocTest, TimerWheelRearmChurnDoesNotAllocate) {
  constexpr std::size_t kLive = 10'240;  // CityScale's armed-timer regime
  sim::TimerWheel wheel;
  std::vector<sim::EventId> ids(kLive, 0);
  std::uint64_t fired = 0;
  std::int64_t t = 0;

  // One full churn round: every timer is cancelled and rearmed at an
  // RTO-like horizon (sub-ms spread), a same-ns keepalive batch piles onto
  // one deadline (exercising the FIFO fire buffer), then time advances and
  // a slice of the population fires and is immediately rearmed — the
  // retransmission-timer lifecycle, compressed.
  const auto churn_round = [&] {
    for (std::size_t i = 0; i < kLive; ++i) {
      if (ids[i] != 0) wheel.cancel(ids[i]);
      ids[i] = wheel.schedule(
          TimePoint::from_ns(t + 200'000 + static_cast<std::int64_t>(i * 131) %
                                               800'000),
          [&fired] { ++fired; });
    }
    t += 300'000;  // overtake ~1/3 of the deadlines
    while (!wheel.empty() && wheel.next_time().ns() <= t) {
      auto popped = wheel.pop();
      popped.fn();
    }
  };

  // Warmup: grow the slot pool, bucket lists and fire buffer to the
  // population's high-water mark while allocation is still allowed.
  for (int round = 0; round < 4; ++round) churn_round();

  const std::uint64_t before = iq::bench::alloc_count();
  for (int round = 0; round < 32; ++round) churn_round();
  const std::uint64_t allocs = iq::bench::alloc_count() - before;

  // ~1/8 of the deadlines land inside each round's 300 us advance, so 36
  // rounds fire the population several times over.
  EXPECT_GT(fired, 4 * kLive);
  EXPECT_EQ(allocs, 0u) << "timer rearm churn touched the heap " << allocs
                        << " times";
}

TEST(ZeroAllocTest, SteadyStateTransferWithCongestionManagerDoesNotAllocate) {
  if (std::getenv("IQ_AUDIT") != nullptr) {
    GTEST_SKIP() << "IQ_AUDIT arms the flight recorder; its bookkeeping "
                    "allocates by design";
  }
  // Same pin with a CongestionManager apportioning the window: the per-ack
  // reapportion must stay inside the scratch arrays reserved at
  // registration, and the share listener must not allocate per call.
  cm::CmConfig mcfg;
  mcfg.aggregate.initial_cwnd = 16.0;
  // Cap the aggregate so the transfer's high-water state (send queue depth,
  // in-flight map, reorder backlog) is fully reached during warmup; an
  // ever-growing window would first hit new depths — and grow pools — in
  // the measured phase.
  mcfg.aggregate.max_cwnd = 24.0;
  cm::CongestionManager mgr(mcfg);
  Transfer t;
  cm::FlowHandle* flow = mgr.register_flow(2.0);
  // A phantom sibling: keeps the apportionment genuinely splitting (shares
  // below the aggregate) rather than degenerating to the single-flow case.
  cm::FlowHandle* sibling = mgr.register_flow(1.0);
  flow->set_share_listener([&t] { t.sender.window_updated(); });
  t.sender.set_external_congestion(flow);

  // Same blackout as the built-in-controller pin, plus a delay spike once
  // the capped aggregate is reached: stretching the pipe's transit time
  // piles up far more simultaneously-live pooled segment bodies (in-transit
  // copies + retransmissions of the same gaps) than the measured phase's
  // 17 ms pipe ever holds, so the body pool's freelist is provisioned past
  // its true high water while allocation is still allowed.
  t.sim.after(Duration::millis(1500), [&t] { t.pipe.set_blackout(true); });
  t.sim.after(Duration::millis(3000), [&t] { t.pipe.set_blackout(false); });
  t.sim.after(Duration::millis(14'000),
              [&t] { t.pipe.set_extra_delay(Duration::millis(300)); });
  t.sim.after(Duration::millis(16'000),
              [&t] { t.pipe.set_extra_delay(Duration::zero()); });
  t.send_and_drain(10'000);
  ASSERT_TRUE(t.sender.established());
  const std::uint64_t warm_delivered = t.delivered;
  ASSERT_GT(warm_delivered, 9900u);

  const std::uint64_t before = iq::bench::alloc_count();
  t.send_and_drain(10'000);
  const std::uint64_t allocs = iq::bench::alloc_count() - before;

  EXPECT_EQ(t.sent, 20'000u);
  EXPECT_GT(t.delivered, warm_delivered + 9900u);
  EXPECT_EQ(allocs, 0u) << "CM-attached steady state touched the heap "
                        << allocs << " times";
  // The CM actually mediated the transfer.
  EXPECT_GT(mgr.stats().reapportions, 1000u);
  EXPECT_LT(flow->share(), mgr.aggregate_cwnd());

  t.sender.set_external_congestion(nullptr);
  mgr.unregister_flow(flow);
  mgr.unregister_flow(sibling);
}

}  // namespace
}  // namespace iq::rudp
