// ShardedSim: conservative lockstep windows, canonical parcel ordering, and
// the determinism contract (bit-identical results at every shard count,
// threaded or inline).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "iq/common/affinity.hpp"
#include "iq/sim/sharded.hpp"

namespace iq::sim {
namespace {

ShardedSim::Config make_cfg(std::size_t shards, bool threaded) {
  ShardedSim::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = Duration::millis(10);
  cfg.threaded = threaded;
  return cfg;
}

TEST(ShardedSimTest, GroupsRoundRobinOntoShards) {
  ShardedSim ss(make_cfg(2, false));
  const auto g0 = ss.add_group();
  const auto g1 = ss.add_group();
  const auto g2 = ss.add_group();
  EXPECT_EQ(ss.shard_of(g0), 0u);
  EXPECT_EQ(ss.shard_of(g1), 1u);
  EXPECT_EQ(ss.shard_of(g2), 0u);
  EXPECT_EQ(&ss.group_sim(g0), &ss.group_sim(g2));
  EXPECT_NE(&ss.group_sim(g0), &ss.group_sim(g1));
}

TEST(ShardedSimTest, LocalEventsRunAndClockAdvances) {
  ShardedSim ss(make_cfg(2, false));
  const auto g0 = ss.add_group();
  const auto g1 = ss.add_group();
  int ran = 0;
  ss.group_sim(g0).after(Duration::millis(3), [&] { ++ran; });
  ss.group_sim(g1).after(Duration::millis(25), [&] { ++ran; });
  ss.run_until(TimePoint::zero() + Duration::millis(30));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(ss.now(), TimePoint::zero() + Duration::millis(30));
  EXPECT_EQ(ss.group_sim(g0).now(), ss.now());
  EXPECT_EQ(ss.group_sim(g1).now(), ss.now());
  EXPECT_TRUE(ss.idle());
}

TEST(ShardedSimTest, ParcelDeliveredAtDueTimeOnDstShard) {
  ShardedSim ss(make_cfg(2, false));
  const auto g0 = ss.add_group();
  const auto g1 = ss.add_group();
  TimePoint seen = TimePoint::zero();
  // Post from g0 during the first window; due one lookahead later.
  ss.group_sim(g0).after(Duration::millis(2), [&] {
    const TimePoint due = ss.group_sim(g0).now() + Duration::millis(10);
    ss.post(g0, g1, due, [&ss, &seen, g1] { seen = ss.group_sim(g1).now(); });
  });
  ss.run_until(TimePoint::zero() + Duration::millis(30));
  EXPECT_EQ(seen, TimePoint::zero() + Duration::millis(12));
  EXPECT_EQ(ss.parcels_posted(), 1u);
  EXPECT_EQ(ss.parcels_delivered(), 1u);
}

TEST(ShardedSimTest, PostBelowLookaheadBoundAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ShardedSim ss(make_cfg(2, false));
  const auto g0 = ss.add_group();
  const auto g1 = ss.add_group();
  ss.group_sim(g0).after(Duration::millis(2), [&] {
    // Due inside the current window: violates the conservative bound.
    ss.post(g0, g1, ss.group_sim(g0).now() + Duration::millis(1), [] {});
  });
  EXPECT_DEATH(ss.run_until(TimePoint::zero() + Duration::millis(30)),
               "lockstep window");
}

TEST(ShardedSimTest, ParcelsOrderedByDueThenSrcGroupThenSeq) {
  // Two source groups race parcels to one destination at equal due times;
  // the canonical order (due, src_group, seq) must hold regardless of which
  // source posts first in wall time.
  for (const std::size_t shards : {1u, 2u, 3u}) {
    ShardedSim ss(make_cfg(shards, false));
    const auto a = ss.add_group();
    const auto b = ss.add_group();
    const auto dst = ss.add_group();
    std::vector<std::string> order;
    const TimePoint due = TimePoint::zero() + Duration::millis(20);
    // b posts first (earlier event time) but has the higher group id.
    ss.group_sim(b).after(Duration::millis(1), [&] {
      ss.post(b, dst, due, [&order] { order.push_back("b0"); });
      ss.post(b, dst, due, [&order] { order.push_back("b1"); });
    });
    ss.group_sim(a).after(Duration::millis(2), [&] {
      ss.post(a, dst, due, [&order] { order.push_back("a0"); });
    });
    ss.run_until(TimePoint::zero() + Duration::millis(40));
    EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "b1"}))
        << "shards=" << shards;
  }
}

TEST(ShardedSimTest, ParcelRunsBeforeLocalEventAtEqualTimestamp) {
  ShardedSim ss(make_cfg(1, false));
  const auto g0 = ss.add_group();
  const auto g1 = ss.add_group();
  std::vector<std::string> order;
  const TimePoint t = TimePoint::zero() + Duration::millis(20);
  ss.group_sim(g1).at(t, [&] { order.push_back("local"); });
  ss.group_sim(g0).after(Duration::millis(1), [&] {
    ss.post(g0, g1, t, [&order] { order.push_back("parcel"); });
  });
  ss.run_until(t + Duration::millis(1));
  EXPECT_EQ(order, (std::vector<std::string>{"parcel", "local"}));
}

// A little deterministic ping-pong workload: `kGroups` logical groups, each
// bouncing counters to (g+1) mod groups with varying delays. Returns a
// digest of every group's receive log. When `chunk` is nonzero the clock is
// driven in chunks of that size instead of one run_until_idle — results must
// not depend on the run_until call pattern.
std::uint64_t pingpong_digest(std::size_t shards, bool threaded,
                              Duration chunk = Duration::zero()) {
  constexpr std::size_t kGroups = 5;
  ShardedSim ss(make_cfg(shards, threaded));
  std::vector<std::uint32_t> groups;
  for (std::size_t g = 0; g < kGroups; ++g) groups.push_back(ss.add_group());

  struct GroupState {
    std::vector<std::int64_t> log;
  };
  std::vector<GroupState> state(kGroups);

  // Each group seeds one token; on receipt, append (now ^ tag) to the log
  // and forward until hops run out.
  struct Forward {
    ShardedSim* ss;
    std::vector<std::uint32_t>* groups;
    std::vector<GroupState>* state;
    void send(std::uint32_t from, int hops, std::int64_t tag) const {
      if (hops <= 0) return;
      const std::uint32_t to = (*groups)[(from + 1) % groups->size()];
      const Duration delay = Duration::millis(10 + (tag % 7));
      const TimePoint due = ss->group_sim(from).now() + delay;
      auto self = *this;
      ss->post(from, to, due, [self, to, hops, tag] {
        (*self.state)[to].log.push_back(self.ss->group_sim(to).now().ns() ^
                                        tag);
        self.send(to, hops - 1, tag * 31 + 1);
      });
    }
  };
  Forward fw{&ss, &groups, &state};
  for (std::size_t g = 0; g < kGroups; ++g) {
    const auto src = groups[g];
    ss.group_sim(src).after(Duration::millis(1 + g), [fw, src, g] {
      fw.send(src, 8, static_cast<std::int64_t>(g + 1));
    });
  }
  const TimePoint deadline = TimePoint::zero() + Duration::seconds(2);
  if (chunk == Duration::zero()) {
    ss.run_until_idle(deadline);
  } else {
    while (!ss.idle() && ss.now() < deadline) ss.run_for(chunk);
  }

  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& gs : state) {
    mix(gs.log.size());
    for (const auto v : gs.log) mix(static_cast<std::uint64_t>(v));
  }
  mix(ss.events_executed());
  mix(ss.parcels_delivered());
  return h;
}

TEST(ShardedSimTest, DeterministicAcrossShardCounts) {
  const std::uint64_t base = pingpong_digest(1, false);
  EXPECT_EQ(pingpong_digest(2, false), base);
  EXPECT_EQ(pingpong_digest(3, false), base);
  EXPECT_EQ(pingpong_digest(5, false), base);
}

TEST(ShardedSimTest, ThreadedMatchesInline) {
  const std::uint64_t base = pingpong_digest(1, false);
  EXPECT_EQ(pingpong_digest(2, true), base);
  EXPECT_EQ(pingpong_digest(5, true), base);
}

TEST(ShardedSimTest, ChunkedRunUntilMatchesSingleRun) {
  // Chopping the run into odd-sized chunks must not change results: parcels
  // order by due time in the inbox heap, not by which window received them.
  const std::uint64_t base = pingpong_digest(2, false);
  EXPECT_EQ(pingpong_digest(2, false, Duration::millis(7)), base);
  EXPECT_EQ(pingpong_digest(2, false, Duration::millis(13)), base);
}

TEST(ShardedSimTest, SetupPostBeforeFirstRunIsAllowed) {
  ShardedSim ss(make_cfg(2, false));
  const auto g0 = ss.add_group();
  const auto g1 = ss.add_group();
  bool ran = false;
  // window_end_ == window_start_ == 0 outside a run; any due >= 0 is legal.
  ss.post(g0, g1, TimePoint::zero() + Duration::millis(5),
          [&ran] { ran = true; });
  ss.run_until(TimePoint::zero() + Duration::millis(20));
  EXPECT_TRUE(ran);
}

TEST(ShardedSimTest, StrictAffinityHeldDuringRun) {
  ShardedSim ss(make_cfg(1, false));
  const auto g0 = ss.add_group();
  bool strict_inside = false;
  ss.group_sim(g0).after(Duration::millis(1),
                         [&] { strict_inside = affinity::strict(); });
  EXPECT_FALSE(affinity::strict());
  ss.run_until(TimePoint::zero() + Duration::millis(5));
  EXPECT_TRUE(strict_inside);
  EXPECT_FALSE(affinity::strict());
}

TEST(ShardedSimTest, EpochsCountWindows) {
  ShardedSim ss(make_cfg(2, false));
  (void)ss.add_group();
  ss.run_until(TimePoint::zero() + Duration::millis(100));
  EXPECT_EQ(ss.epochs(), 10u);  // 100 ms / 10 ms lookahead
}

}  // namespace
}  // namespace iq::sim
