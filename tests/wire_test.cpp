// Tests for the wire layer itself: DirectWirePair delay semantics,
// LossyWirePair drop/duplicate/reorder statistics and determinism, and
// SimWire binding on the simulated network.

#include <gtest/gtest.h>

#include <vector>

#include "iq/net/dumbbell.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq::wire {
namespace {

rudp::Segment data_seg(rudp::WireSeq seq) {
  rudp::Segment s;
  s.type = rudp::SegmentType::Data;
  s.conn_id = 1;
  s.seq = seq;
  s.payload_bytes = 100;
  return s;
}

TEST(DirectWireTest, DeliversAfterExactDelay) {
  sim::Simulator sim;
  DirectWirePair pair(sim, Duration::millis(15));
  std::vector<std::int64_t> arrivals;
  pair.b().set_receiver([&](const rudp::Segment&) {
    arrivals.push_back(sim.now().ns());
  });
  pair.a().send(data_seg(1));
  sim.after(Duration::millis(5), [&] { pair.a().send(data_seg(2)); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], Duration::millis(15).ns());
  EXPECT_EQ(arrivals[1], Duration::millis(20).ns());
  EXPECT_EQ(pair.segments_carried(), 2u);
}

TEST(DirectWireTest, BothDirectionsIndependent) {
  sim::Simulator sim;
  DirectWirePair pair(sim, Duration::millis(1));
  int at_a = 0, at_b = 0;
  pair.a().set_receiver([&](const rudp::Segment&) { ++at_a; });
  pair.b().set_receiver([&](const rudp::Segment&) { ++at_b; });
  pair.a().send(data_seg(1));
  pair.b().send(data_seg(2));
  pair.b().send(data_seg(3));
  sim.run();
  EXPECT_EQ(at_b, 1);
  EXPECT_EQ(at_a, 2);
}

TEST(LossyWireTest, ZeroConfigIsLossless) {
  sim::Simulator sim;
  LossyWirePair pair(sim, {});
  int received = 0;
  pair.b().set_receiver([&](const rudp::Segment&) { ++received; });
  for (int i = 0; i < 100; ++i) pair.a().send(data_seg(i));
  sim.run();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(pair.dropped(), 0u);
  EXPECT_EQ(pair.duplicated(), 0u);
}

TEST(LossyWireTest, DropRateApproximatesConfig) {
  sim::Simulator sim;
  LossyConfig cfg;
  cfg.drop_probability = 0.3;
  cfg.seed = 5;
  LossyWirePair pair(sim, cfg);
  int received = 0;
  pair.b().set_receiver([&](const rudp::Segment&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) pair.a().send(data_seg(i));
  sim.run();
  EXPECT_NEAR(static_cast<double>(pair.dropped()) / n, 0.3, 0.03);
  EXPECT_EQ(received, n - static_cast<int>(pair.dropped()));
}

TEST(LossyWireTest, DuplicationDeliversTwice) {
  sim::Simulator sim;
  LossyConfig cfg;
  cfg.duplicate_probability = 0.5;
  cfg.seed = 9;
  LossyWirePair pair(sim, cfg);
  int received = 0;
  pair.b().set_receiver([&](const rudp::Segment&) { ++received; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) pair.a().send(data_seg(i));
  sim.run();
  EXPECT_EQ(received, n + static_cast<int>(pair.duplicated()));
  EXPECT_NEAR(static_cast<double>(pair.duplicated()) / n, 0.5, 0.05);
}

TEST(LossyWireTest, ReorderJitterActuallyReorders) {
  sim::Simulator sim;
  LossyConfig cfg;
  cfg.reorder_jitter = Duration::millis(50);
  cfg.seed = 11;
  LossyWirePair pair(sim, cfg);
  std::vector<rudp::WireSeq> order;
  pair.b().set_receiver([&](const rudp::Segment& s) { order.push_back(s.seq); });
  for (int i = 0; i < 200; ++i) pair.a().send(data_seg(i));
  sim.run();
  ASSERT_EQ(order.size(), 200u);
  int inversions = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 10);
}

TEST(LossyWireTest, DeterministicForSeed) {
  auto run = [] {
    sim::Simulator sim;
    LossyConfig cfg;
    cfg.drop_probability = 0.2;
    cfg.duplicate_probability = 0.1;
    cfg.reorder_jitter = Duration::millis(10);
    cfg.seed = 99;
    LossyWirePair pair(sim, cfg);
    std::vector<rudp::WireSeq> order;
    pair.b().set_receiver(
        [&](const rudp::Segment& s) { order.push_back(s.seq); });
    for (int i = 0; i < 500; ++i) pair.a().send(data_seg(i));
    sim.run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(LossyWireTest, MidRunDropChange) {
  sim::Simulator sim;
  LossyWirePair pair(sim, {});
  int received = 0;
  pair.b().set_receiver([&](const rudp::Segment&) { ++received; });
  for (int i = 0; i < 50; ++i) pair.a().send(data_seg(i));
  sim.run();
  EXPECT_EQ(received, 50);
  pair.set_drop_probability(1.0);
  for (int i = 0; i < 50; ++i) pair.a().send(data_seg(i));
  sim.run();
  EXPECT_EQ(received, 50);
  EXPECT_EQ(pair.dropped(), 50u);
}

TEST(SimWireTest, CarriesSegmentsThroughNetwork) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = 1});
  SimWire a(network, {db.left(0).id(), 10}, {db.right(0).id(), 10}, 1);
  SimWire b(network, {db.right(0).id(), 10}, {db.left(0).id(), 10}, 1);
  std::vector<rudp::WireSeq> got;
  b.set_receiver([&](const rudp::Segment& s) { got.push_back(s.seq); });
  for (int i = 0; i < 10; ++i) a.send(data_seg(i));
  sim.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], static_cast<unsigned>(i));
  EXPECT_EQ(a.sent(), 10u);
  EXPECT_EQ(b.received(), 10u);
}

TEST(SimWireTest, WireBytesChargedToLinks) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = 1});
  SimWire a(network, {db.left(0).id(), 10}, {db.right(0).id(), 10}, 1);
  SimWire b(network, {db.right(0).id(), 10}, {db.left(0).id(), 10}, 1);
  b.set_receiver([](const rudp::Segment&) {});
  rudp::Segment seg = data_seg(1);
  a.send(seg);
  sim.run();
  EXPECT_EQ(db.bottleneck().transmitted_bytes(), seg.wire_bytes());
}

TEST(SimWireTest, UnbindsOnDestruction) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = 1});
  {
    SimWire a(network, {db.left(0).id(), 10}, {db.right(0).id(), 10}, 1);
  }
  // Port free again: rebinding must not crash or double-deliver.
  SimWire a2(network, {db.left(0).id(), 10}, {db.right(0).id(), 10}, 1);
  int got = 0;
  a2.set_receiver([&](const rudp::Segment&) { ++got; });
  SimWire b(network, {db.right(0).id(), 10}, {db.left(0).id(), 10}, 1);
  b.send(data_seg(5));
  sim.run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace iq::wire
