// End-to-end 32-bit sequence wraparound: connections configured to start
// just below 2^32 must cross the boundary transparently — under loss,
// reordering, and adaptive-reliability skips.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"

namespace iq::rudp {
namespace {

constexpr Seq kNearWrap = (Seq{1} << 32) - 50;

struct WrapPair {
  sim::Simulator sim;
  std::unique_ptr<wire::LossyWirePair> wire;
  std::unique_ptr<RudpConnection> sender;
  std::unique_ptr<RudpConnection> receiver;
  std::vector<DeliveredMessage> delivered;

  WrapPair(const wire::LossyConfig& lcfg, double tolerance) {
    wire = std::make_unique<wire::LossyWirePair>(sim, lcfg);
    RudpConfig scfg;
    scfg.initial_seq = kNearWrap;
    RudpConfig rcfg = scfg;
    rcfg.recv_loss_tolerance = tolerance;
    sender = std::make_unique<RudpConnection>(wire->a(), scfg, Role::Client);
    receiver = std::make_unique<RudpConnection>(wire->b(), rcfg, Role::Server);
    receiver->set_message_handler(
        [this](const DeliveredMessage& m) { delivered.push_back(m); });
    receiver->listen();
    sender->connect();
    sim.run_until(TimePoint::zero() + Duration::seconds(5));
  }
};

TEST(WraparoundTest, CleanTransferAcrossBoundary) {
  WrapPair p({}, 0.0);
  ASSERT_TRUE(p.sender->established());
  // 100 x 3-fragment messages: 300 seqs, crossing 2^32 at message ~17.
  for (int i = 0; i < 100; ++i) p.sender->send_message({.bytes = 4000});
  p.sim.run_until(TimePoint::zero() + Duration::seconds(120));
  ASSERT_EQ(p.delivered.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.delivered[i].msg_id, static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ(p.delivered[i].bytes, 4000);
  }
}

TEST(WraparoundTest, LossAndReorderAcrossBoundary) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.15;
  lcfg.reorder_jitter = Duration::millis(20);
  lcfg.seed = 7;
  WrapPair p(lcfg, 0.0);
  ASSERT_TRUE(p.sender->established());
  for (int i = 0; i < 80; ++i) p.sender->send_message({.bytes = 3000});
  p.sim.run_until(TimePoint::zero() + Duration::seconds(600));
  ASSERT_EQ(p.delivered.size(), 80u);
  for (std::size_t i = 1; i < p.delivered.size(); ++i) {
    EXPECT_GT(p.delivered[i].msg_id, p.delivered[i - 1].msg_id);
  }
  EXPECT_GT(p.sender->stats().segments_retransmitted, 0u);
}

TEST(WraparoundTest, SkipsAcrossBoundary) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.25;
  lcfg.seed = 13;
  WrapPair p(lcfg, 0.5);
  ASSERT_TRUE(p.sender->established());
  for (int i = 0; i < 120; ++i) {
    p.sender->send_message({.bytes = 1400, .marked = (i % 3 == 0)});
  }
  p.sim.run_until(TimePoint::zero() + Duration::seconds(600));
  // Conservation across the boundary.
  EXPECT_EQ(p.delivered.size() + p.receiver->stats().messages_dropped, 120u);
  // Marked messages all arrive.
  int marked = 0;
  for (const auto& m : p.delivered) {
    if (m.marked) ++marked;
  }
  EXPECT_EQ(marked, 40);
}

TEST(WraparoundTest, WireSeqsActuallyWrapped) {
  // Sanity that the test really crosses the boundary: 50 seqs remain before
  // 2^32, so any transfer beyond ~50 segments wraps.
  WrapPair p({}, 0.0);
  for (int i = 0; i < 100; ++i) p.sender->send_message({.bytes = 1400});
  p.sim.run_until(TimePoint::zero() + Duration::seconds(60));
  ASSERT_EQ(p.delivered.size(), 100u);
  EXPECT_GT(p.sender->stats().segments_sent, 60u);
}

}  // namespace
}  // namespace iq::rudp
