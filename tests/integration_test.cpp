// System-level integration tests: reduced-scale versions of the paper's
// experiments, asserting each table's *qualitative* claim (who wins and in
// which metric) rather than absolute numbers.

#include <gtest/gtest.h>

#include "iq/harness/scenarios.hpp"

namespace iq::harness {
namespace {

/// Shrink a scenario so it runs in a second or two of wall time while
/// keeping its relative structure.
ExperimentConfig shrink(ExperimentConfig cfg, std::uint64_t frames) {
  cfg.total_frames = frames;
  cfg.max_sim_time = Duration::seconds(240);
  return cfg;
}

TEST(IntegrationTest, Scheme1_CoordinationFinishesFasterUnderConflict) {
  // Table 3 claim: with marking adaptation, coordinated IQ-RUDP finishes
  // sooner and delivers fewer messages (but within the 40% tolerance)
  // than uncoordinated RUDP.
  const auto iq = run_experiment(shrink(scenarios::table3(SchemeSpec::iq_rudp()), 200));
  const auto ru = run_experiment(shrink(scenarios::table3(SchemeSpec::rudp()), 200));
  ASSERT_TRUE(iq.completed);
  ASSERT_TRUE(ru.completed);

  // Coordinated run discards unmarked traffic at the sender...
  EXPECT_GT(iq.rudp.messages_discarded_at_send, 0u);
  EXPECT_EQ(ru.rudp.messages_discarded_at_send, 0u);
  // ...delivering less but never beyond tolerance...
  EXPECT_LT(iq.summary.delivered_pct, ru.summary.delivered_pct + 1e-9);
  EXPECT_GE(iq.summary.delivered_pct, 60.0 - 1e-9);
  // ...and finishing no later.
  EXPECT_LE(iq.summary.duration_s, ru.summary.duration_s * 1.05);
}

TEST(IntegrationTest, Scheme2_CoordinationAvoidsOverReaction) {
  // Table 6 claim: with resolution adaptation on sub-MSS frames,
  // coordinated IQ-RUDP sustains higher throughput than uncoordinated
  // RUDP under heavy congestion.
  const auto iq = run_experiment(
      shrink(scenarios::table6(SchemeSpec::iq_rudp(), 16'000'000), 1500));
  const auto ru = run_experiment(
      shrink(scenarios::table6(SchemeSpec::rudp(), 16'000'000), 1500));
  ASSERT_TRUE(iq.completed);
  ASSERT_TRUE(ru.completed);
  EXPECT_GT(iq.coordination.window_rescales, 0u);
  EXPECT_EQ(ru.coordination.window_rescales, 0u);
  EXPECT_GT(iq.summary.throughput_kBps, ru.summary.throughput_kBps * 0.98);
}

TEST(IntegrationTest, Scheme3_DeferralsResolveThroughSendPath) {
  auto cfg = shrink(scenarios::table8(SchemeSpec::iq_rudp()), 3000);
  // This test exercises the mechanism, not the performance claim: make the
  // thresholds sensitive so deferrals and compensations occur in a short
  // run.
  cfg.upper_threshold = 0.02;
  const auto iq = run_experiment(cfg);
  ASSERT_TRUE(iq.completed);
  // The granularity-limited app deferred at least one adaptation, and the
  // coordinator resolved it on a send call with ADAPT_COND compensation.
  EXPECT_GT(iq.coordination.deferrals_noted, 0u);
  EXPECT_GT(iq.coordination.deferred_resolved, 0u);
  EXPECT_GT(iq.coordination.cond_compensations, 0u);
}

TEST(IntegrationTest, TcpAndRudpCoexist) {
  // Table 2 claim: against a TCP cross flow, RUDP's throughput is in the
  // same ballpark as TCP's (fairness), with TCP somewhat ahead.
  auto cfg = shrink(scenarios::table2(SchemeSpec::rudp()), 2000);
  const auto ru = run_experiment(cfg);
  ASSERT_TRUE(ru.completed);
  // The flow made progress despite the competing TCP bulk transfer.
  EXPECT_GT(ru.summary.throughput_kBps, 100.0);
}

TEST(IntegrationTest, AdaptationImprovesCompletionTime) {
  // Table 1 claim: application adaptation shortens the run vs no
  // adaptation under the same 18 Mb cross traffic.
  const auto no_adapt =
      run_experiment(shrink(scenarios::table1(SchemeSpec::rudp(), false), 120));
  const auto adapt = run_experiment(
      shrink(scenarios::table1(SchemeSpec::iq_rudp(), true), 120));
  ASSERT_TRUE(no_adapt.completed);
  ASSERT_TRUE(adapt.completed);
  EXPECT_LT(adapt.summary.duration_s, no_adapt.summary.duration_s);
}

TEST(IntegrationTest, MessagesConservedAcrossAllSchemes) {
  for (const auto& scheme :
       {SchemeSpec::rudp(), SchemeSpec::iq_rudp(), SchemeSpec::app_only()}) {
    auto cfg = shrink(scenarios::table3(scheme), 150);
    const auto r = run_experiment(cfg);
    ASSERT_TRUE(r.completed) << scheme.label;
    // offered = delivered + dropped-in-flight + discarded-at-send.
    EXPECT_EQ(r.rudp.messages_offered, cfg.total_frames) << scheme.label;
    EXPECT_EQ(r.rudp.messages_delivered + r.rudp.messages_dropped +
                  r.rudp.messages_discarded_at_send,
              cfg.total_frames)
        << scheme.label;
  }
}

}  // namespace
}  // namespace iq::harness
