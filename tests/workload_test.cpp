// Tests for workload generators: MBone trace shape/determinism, frame
// schedules, CBR and VBR cross-traffic sources.

#include <gtest/gtest.h>

#include "iq/net/dumbbell.hpp"
#include "iq/net/sinks.hpp"
#include "iq/workload/cbr_source.hpp"
#include "iq/workload/frame_schedule.hpp"
#include "iq/workload/mbone_trace.hpp"
#include "iq/workload/vbr_source.hpp"

namespace iq::workload {
namespace {

TEST(MboneTraceTest, DeterministicForSeed) {
  MboneTrace a, b;
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.groups(), b.groups());
}

TEST(MboneTraceTest, DifferentSeedsDiffer) {
  MboneTrace a(MboneTraceConfig{.seed = 1});
  MboneTrace b(MboneTraceConfig{.seed = 2});
  EXPECT_NE(a.groups(), b.groups());
}

TEST(MboneTraceTest, StaysWithinBounds) {
  MboneTraceConfig cfg;
  cfg.min_group = 3;
  cfg.max_group = 50;
  MboneTrace t(cfg);
  EXPECT_GE(t.min_seen(), 3);
  EXPECT_LE(t.max_seen(), 50);
}

TEST(MboneTraceTest, ShowsBurstiness) {
  MboneTrace t;
  // The trace must contain at least one step of magnitude >= 5 (a burst),
  // otherwise the workload would not exercise the adaptation machinery.
  int big_steps = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (std::abs(t.group_at(i) - t.group_at(i - 1)) >= 5) ++big_steps;
  }
  EXPECT_GT(big_steps, 10);
}

TEST(MboneTraceTest, CoversWideRange) {
  MboneTrace t;
  EXPECT_LT(t.min_seen(), 12);
  EXPECT_GT(t.max_seen(), 40);
}

TEST(MboneTraceTest, IndexWrapsAround) {
  MboneTrace t(MboneTraceConfig{.samples = 16});
  EXPECT_EQ(t.group_at(0), t.group_at(16));
  EXPECT_EQ(t.group_at(3), t.group_at(19));
}

TEST(MboneTraceTest, TimeIndexingOneSamplePerSecond) {
  MboneTrace t;
  EXPECT_EQ(t.group_at_time(Duration::seconds(5)), t.group_at(5));
  EXPECT_EQ(t.group_at_time(Duration::millis(5900)), t.group_at(5));
}

TEST(FrameScheduleTest, MultipliesGroupSize) {
  MboneTrace t;
  FrameSchedule fs(t, 3000);
  EXPECT_EQ(fs.frame_bytes_at(Duration::seconds(7)),
            static_cast<std::int64_t>(t.group_at(7)) * 3000);
}

TEST(CbrSourceTest, OfferedRateMatchesConfig) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Dumbbell db(net, {.pairs = 2});
  net::CountingSink sink;
  db.right(1).bind(9000, &sink);

  CbrConfig cfg;
  cfg.rate_bps = 10'000'000;
  cfg.payload_bytes = 1400;
  CbrSource src(net, db.left(1), db.right(1), cfg);
  src.start();
  sim.run_until(TimePoint::zero() + Duration::seconds(2));
  src.stop();

  const double offered_bps = static_cast<double>(src.sent_bytes()) * 8 / 2.0;
  EXPECT_NEAR(offered_bps, 10e6, 10e6 * 0.02);
  // Uncongested: everything arrives once in-flight packets land.
  sim.run_until(TimePoint::zero() + Duration::seconds(3));
  EXPECT_EQ(sink.packets(), src.sent());
}

TEST(CbrSourceTest, StopsCleanly) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Dumbbell db(net, {.pairs = 2});
  CbrSource src(net, db.left(1), db.right(1), {});
  src.start();
  sim.run_until(TimePoint::zero() + Duration::millis(100));
  const auto sent = src.sent();
  src.stop();
  sim.run_until(TimePoint::zero() + Duration::millis(200));
  EXPECT_EQ(src.sent(), sent);
}

TEST(VbrSourceTest, FrameRateAndTraceDrivenSize) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Dumbbell db(net, {.pairs = 3});
  net::CountingSink sink;
  db.right(2).bind(9001, &sink);

  MboneTrace trace;
  FrameSchedule schedule(trace, 500);
  VbrConfig cfg;
  cfg.frames_per_sec = 50;
  VbrSource src(net, db.left(2), db.right(2), schedule, cfg);
  src.start();
  sim.run_until(TimePoint::zero() + Duration::seconds(2));
  src.stop();

  EXPECT_NEAR(static_cast<double>(src.frames_sent()), 100.0, 2.0);
  // Frames larger than the MTU split into multiple packets.
  EXPECT_GT(src.packets_sent(), src.frames_sent());
}

TEST(VbrSourceTest, BytesTrackTraceMean) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Dumbbell db(net, {.pairs = 3});
  MboneTrace trace;
  FrameSchedule schedule(trace, 400);
  VbrConfig cfg;
  cfg.frames_per_sec = 20;
  VbrSource src(net, db.left(2), db.right(2), schedule, cfg);
  src.start();
  sim.run_until(TimePoint::zero() + Duration::seconds(10));
  src.stop();
  // Mean frame ≈ mean(group) * 400; sent bytes ≈ frames * mean frame
  // (within a loose factor — the first 10 s of the trace is not the
  // whole-trace mean).
  const double mean_frame = trace.mean() * 400;
  const double per_frame = static_cast<double>(src.sent_bytes()) /
                           static_cast<double>(src.frames_sent());
  EXPECT_GT(per_frame, mean_frame * 0.2);
  EXPECT_LT(per_frame, mean_frame * 5.0);
}

}  // namespace
}  // namespace iq::workload
