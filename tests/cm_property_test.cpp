// Property tests for congestion-manager apportionment (docs/CM.md), in the
// style of loss_monitor_property_test: drive a CongestionManager through a
// long random interleaving of join / leave / weight / donation / rescale /
// ack / loss / timeout / epoch operations and assert after every step that
//   * conservation: Σ shares == aggregate cwnd (within rounding),
//   * anti-starvation: every share ≥ min(floor, aggregate / n) − eps,
//   * dedup accounting: reported == penalized + deduped,
//   * determinism: a mirror manager fed the identical operation sequence
//     lands on bit-identical shares.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "iq/cm/manager.hpp"
#include "iq/common/rng.hpp"

namespace iq::cm {
namespace {

TimePoint at_us(std::int64_t us) {
  return TimePoint::from_ns(us * 1000);
}

class CmApportionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CmApportionProperty, InvariantsHoldUnderRandomInterleavings) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const auto below = [&rng](std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bound) - 1));
  };

  CmConfig cfg;
  cfg.aggregate.initial_cwnd = 4.0 + static_cast<double>(below(60));
  cfg.share_floor = 0.5 + 0.25 * static_cast<double>(below(4));

  CongestionManager mgr(cfg);
  CongestionManager mirror(cfg);
  std::vector<FlowHandle*> flows;
  std::vector<FlowHandle*> mirror_flows;

  std::int64_t t_us = 0;
  for (int step = 0; step < 600; ++step) {
    t_us += 1 + static_cast<std::int64_t>(below(20'000));
    const auto diag = "seed " + std::to_string(seed) + " step " +
                      std::to_string(step);
    const std::uint64_t op = below(10);
    const std::size_t n = flows.size();
    if (n == 0 || op == 0) {
      const double weight = 0.25 * static_cast<double>(below(33));
      flows.push_back(mgr.register_flow(weight));
      mirror_flows.push_back(mirror.register_flow(weight));
    } else if (op == 1) {
      const std::size_t victim = below(n);
      mgr.unregister_flow(flows[victim]);
      mirror.unregister_flow(mirror_flows[victim]);
      flows.erase(flows.begin() + static_cast<std::ptrdiff_t>(victim));
      mirror_flows.erase(mirror_flows.begin() +
                         static_cast<std::ptrdiff_t>(victim));
    } else {
      const std::size_t pick = below(n);
      switch (op) {
        case 2: {
          const double w = 0.25 * static_cast<double>(below(33));
          flows[pick]->set_weight(w);
          mirror_flows[pick]->set_weight(w);
          break;
        }
        case 3: {
          const double factor = 0.5 + 0.1 * static_cast<double>(below(16));
          flows[pick]->scale_window(factor);
          mirror_flows[pick]->scale_window(factor);
          break;
        }
        case 4: {
          const double factor = 0.5 + 0.1 * static_cast<double>(below(16));
          mgr.scale_aggregate(factor);
          mirror.scale_aggregate(factor);
          break;
        }
        case 5:
        case 6: {
          const int acked = 1 + static_cast<int>(below(8));
          flows[pick]->on_ack(acked, at_us(t_us));
          mirror_flows[pick]->on_ack(acked, at_us(t_us));
          break;
        }
        case 7: {
          flows[pick]->on_loss(at_us(t_us));
          mirror_flows[pick]->on_loss(at_us(t_us));
          break;
        }
        case 8: {
          flows[pick]->on_timeout(at_us(t_us));
          mirror_flows[pick]->on_timeout(at_us(t_us));
          break;
        }
        default: {
          const double ratio = 0.01 * static_cast<double>(below(50));
          flows[pick]->on_epoch(ratio, at_us(t_us));
          mirror_flows[pick]->on_epoch(ratio, at_us(t_us));
          break;
        }
      }
    }

    // Conservation + anti-starvation after every operation.
    const double aggregate = mgr.aggregate_cwnd();
    double sum = 0.0;
    double min_share = aggregate;
    for (FlowHandle* f : flows) {
      sum += f->share();
      min_share = std::min(min_share, f->share());
    }
    if (!flows.empty()) {
      ASSERT_NEAR(sum, aggregate, 1e-9 * std::max(1.0, aggregate)) << diag;
      const double entitled = std::min(
          cfg.share_floor, aggregate / static_cast<double>(flows.size()));
      ASSERT_GE(min_share, entitled - 1e-9) << diag;
    }

    // Dedup accounting identities.
    const CmStats& st = mgr.stats();
    ASSERT_EQ(st.losses_reported, st.losses_penalized + st.losses_deduped)
        << diag;
    ASSERT_EQ(st.timeouts_reported,
              st.timeouts_penalized + st.timeouts_deduped)
        << diag;
    ASSERT_GE(st.epochs_reported, st.epochs_applied) << diag;

    // Determinism: the mirror saw the identical sequence → bit-identical.
    ASSERT_EQ(mirror.aggregate_cwnd(), aggregate) << diag;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      ASSERT_EQ(mirror_flows[i]->share(), flows[i]->share())
          << diag << " flow " << i;
    }
  }

  for (FlowHandle* f : flows) mgr.unregister_flow(f);
  for (FlowHandle* f : mirror_flows) mirror.unregister_flow(f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmApportionProperty,
                         ::testing::Range<std::uint64_t>(1, 25),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace iq::cm
