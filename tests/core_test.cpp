// Tests for the IQ coordination core: adaptation records, eq. (1), the
// coordinator's three schemes, metric export, and the assembled facade.

#include <gtest/gtest.h>

#include <memory>

#include "iq/cm/manager.hpp"
#include "iq/core/iq_connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq::core {
namespace {

// ----------------------------------------------------- AdaptationRecord ---

TEST(AdaptationRecordTest, RoundTripThroughAttrs) {
  AdaptationRecord rec;
  rec.resolution_change = 0.25;
  rec.mark_degree = 0.4;
  rec.when = attr::kAdaptDeferred;
  rec.cond_error_ratio = 0.18;
  rec.frame_bytes = 900;

  const AdaptationRecord back = AdaptationRecord::from_attrs(rec.to_attrs());
  EXPECT_EQ(back.resolution_change, 0.25);
  EXPECT_EQ(back.mark_degree, 0.4);
  EXPECT_EQ(back.when, attr::kAdaptDeferred);
  EXPECT_EQ(back.cond_error_ratio, 0.18);
  EXPECT_EQ(back.frame_bytes, 900);
}

TEST(AdaptationRecordTest, EmptyAttrsIsNoAdaptation) {
  const AdaptationRecord rec = AdaptationRecord::from_attrs({});
  EXPECT_FALSE(rec.any());
  EXPECT_FALSE(rec.deferred());
}

TEST(AdaptationRecordTest, FreqOnlyCounts) {
  attr::AttrList attrs{{attr::kAdaptFreq, 0.5}};
  EXPECT_TRUE(AdaptationRecord::from_attrs(attrs).any());
}

// --------------------------------------------------------------- eq. (1) --

TEST(RescaleFactorTest, PureResolutionRescale) {
  // Shrinking frames by 20% grows the window by 1/0.8.
  EXPECT_NEAR(Coordinator::rescale_factor(0.2, 0, 0, false), 1.25, 1e-12);
  // Growing frames by 10% (rate_chg = -0.1) shrinks the window.
  EXPECT_NEAR(Coordinator::rescale_factor(-0.1, 0, 0, false), 1.0 / 1.1,
              1e-12);
}

TEST(RescaleFactorTest, CondCompensationDirections) {
  // Network got worse during the deferral: window must grow LESS.
  const double worse = Coordinator::rescale_factor(0.2, 0.05, 0.30, true);
  const double same = Coordinator::rescale_factor(0.2, 0.05, 0.05, true);
  const double better = Coordinator::rescale_factor(0.2, 0.30, 0.05, true);
  EXPECT_LT(worse, same);
  EXPECT_GT(better, same);
  EXPECT_NEAR(same, 1.25, 1e-12);
}

TEST(RescaleFactorTest, Equation1Value) {
  // w' / w = 1/(1-rate_chg) * (1-eratio_now)/(1-eratio_then).
  EXPECT_NEAR(Coordinator::rescale_factor(0.25, 0.10, 0.28, true),
              (1.0 / 0.75) * (0.72 / 0.90), 1e-12);
}

// ------------------------------------------------------------- fixtures ---

struct CorePair {
  sim::Simulator sim;
  wire::DirectWirePair wires{sim, Duration::millis(15)};
  std::unique_ptr<IqRudpConnection> snd;
  std::unique_ptr<IqRudpConnection> rcv;

  explicit CorePair(CoordinationMode mode = CoordinationMode::Coordinated,
                    double tolerance = 0.4) {
    rudp::RudpConfig cfg;
    rudp::RudpConfig rcfg;
    rcfg.recv_loss_tolerance = tolerance;
    CoordinatorConfig ccfg;
    ccfg.mode = mode;
    snd = std::make_unique<IqRudpConnection>(wires.a(), cfg,
                                             rudp::Role::Client, ccfg);
    rcv = std::make_unique<IqRudpConnection>(wires.b(), rcfg,
                                             rudp::Role::Server, ccfg);
    rcv->listen();
    snd->connect();
    sim.run_until(TimePoint::zero() + Duration::millis(200));
  }
};

// ------------------------------------------------------------ scheme 1 ----

TEST(CoordinatorTest, MarkAdaptationEnablesDiscard) {
  CorePair p;
  attr::CallbackContext ctx;
  attr::AttrList result{{attr::kAdaptMark, 0.4}};
  p.snd->coordinator().on_callback_result(result, ctx);
  EXPECT_TRUE(p.snd->transport().discard_unmarked());
  EXPECT_EQ(p.snd->coordinator().stats().discard_enables, 1u);

  attr::AttrList off{{attr::kAdaptMark, 0.0}};
  p.snd->coordinator().on_callback_result(off, ctx);
  EXPECT_FALSE(p.snd->transport().discard_unmarked());
}

TEST(CoordinatorTest, UncoordinatedIgnoresMarkAdaptation) {
  CorePair p(CoordinationMode::Uncoordinated);
  attr::CallbackContext ctx;
  attr::AttrList result{{attr::kAdaptMark, 0.4}};
  p.snd->coordinator().on_callback_result(result, ctx);
  EXPECT_FALSE(p.snd->transport().discard_unmarked());
  EXPECT_EQ(p.snd->coordinator().stats().records_seen, 1u);
}

// ------------------------------------------------------------ scheme 2 ----

TEST(CoordinatorTest, ResolutionAdaptationRescalesWindow) {
  CorePair p;
  const double w0 = p.snd->transport().congestion().cwnd();
  attr::CallbackContext ctx;
  attr::AttrList result{{attr::kAdaptPktSize, 0.2},
                        {attr::kAppFrameBytes, std::int64_t{800}}};
  p.snd->coordinator().on_callback_result(result, ctx);
  EXPECT_NEAR(p.snd->transport().congestion().cwnd(), w0 * 1.25, 1e-9);
  EXPECT_EQ(p.snd->coordinator().stats().window_rescales, 1u);
}

TEST(CoordinatorTest, LargeFramesGetNoRescale) {
  CorePair p;
  const double w0 = p.snd->transport().congestion().cwnd();
  attr::CallbackContext ctx;
  // Frame still far above MSS after adaptation: packets stay MSS-sized.
  attr::AttrList result{{attr::kAdaptPktSize, 0.2},
                        {attr::kAppFrameBytes, std::int64_t{90'000}}};
  p.snd->coordinator().on_callback_result(result, ctx);
  EXPECT_DOUBLE_EQ(p.snd->transport().congestion().cwnd(), w0);
  EXPECT_EQ(p.snd->coordinator().stats().window_rescales, 0u);
}

TEST(CoordinatorTest, FrequencyAdaptationNoRescale) {
  CorePair p;
  const double w0 = p.snd->transport().congestion().cwnd();
  attr::CallbackContext ctx;
  attr::AttrList result{{attr::kAdaptFreq, 0.5}};
  p.snd->coordinator().on_callback_result(result, ctx);
  EXPECT_DOUBLE_EQ(p.snd->transport().congestion().cwnd(), w0);
  EXPECT_EQ(p.snd->coordinator().stats().freq_adaptations, 1u);
}

TEST(CoordinatorTest, UncoordinatedNeverRescales) {
  CorePair p(CoordinationMode::Uncoordinated);
  const double w0 = p.snd->transport().congestion().cwnd();
  attr::CallbackContext ctx;
  attr::AttrList result{{attr::kAdaptPktSize, 0.5}};
  p.snd->coordinator().on_callback_result(result, ctx);
  EXPECT_DOUBLE_EQ(p.snd->transport().congestion().cwnd(), w0);
}

// ------------------------------------------------------------ scheme 3 ----

TEST(CoordinatorTest, DeferredThenResolvedOnSend) {
  CorePair p;
  const double w0 = p.snd->transport().congestion().cwnd();

  attr::CallbackContext ctx;
  attr::AttrList deferred{{attr::kAdaptWhen, attr::kAdaptDeferred}};
  p.snd->coordinator().on_callback_result(deferred, ctx);
  EXPECT_TRUE(p.snd->coordinator().deferral_pending());
  EXPECT_DOUBLE_EQ(p.snd->transport().congestion().cwnd(), w0);

  // The adaptation lands with the next send call.
  rudp::MessageSpec spec;
  spec.bytes = 700;
  attr::AttrList attrs{{attr::kAdaptPktSize, 0.2},
                       {attr::kAppFrameBytes, std::int64_t{700}}};
  p.snd->send_with_attrs(spec, attrs);
  EXPECT_FALSE(p.snd->coordinator().deferral_pending());
  EXPECT_NEAR(p.snd->transport().congestion().cwnd(), w0 * 1.25, 1e-9);
  EXPECT_EQ(p.snd->coordinator().stats().deferred_resolved, 1u);
}

// Regression: deferral_pending_ used to stick forever unless a *send-path
// resolution* adaptation arrived — a deferral resolved by a frequency
// adaptation, superseded by a later concrete callback, or simply abandoned
// left the flag set, mis-applying eq. (1) compensation to the next
// unrelated adaptation.
TEST(CoordinatorTest, DeferredResolvedByFrequencySend) {
  CorePair p;
  attr::CallbackContext ctx;
  attr::AttrList deferred{{attr::kAdaptWhen, attr::kAdaptDeferred}};
  p.snd->coordinator().on_callback_result(deferred, ctx);
  ASSERT_TRUE(p.snd->coordinator().deferral_pending());

  rudp::MessageSpec spec;
  spec.bytes = 700;
  attr::AttrList attrs{{attr::kAdaptFreq, 0.5}};
  p.snd->send_with_attrs(spec, attrs);
  EXPECT_FALSE(p.snd->coordinator().deferral_pending());
  EXPECT_EQ(p.snd->coordinator().stats().deferred_resolved, 1u);
  EXPECT_EQ(p.snd->coordinator().stats().deferrals_superseded, 0u);
}

TEST(CoordinatorTest, DeferredSupersededByConcreteCallback) {
  CorePair p;
  attr::CallbackContext ctx;
  attr::AttrList deferred{{attr::kAdaptWhen, attr::kAdaptDeferred}};
  p.snd->coordinator().on_callback_result(deferred, ctx);
  ASSERT_TRUE(p.snd->coordinator().deferral_pending());

  // A later callback announces an immediate (non-deferred) adaptation: the
  // old deferral is superseded, not left pending.
  attr::AttrList concrete{{attr::kAdaptPktSize, 0.2},
                          {attr::kAppFrameBytes, std::int64_t{700}}};
  p.snd->coordinator().on_callback_result(concrete, ctx);
  EXPECT_FALSE(p.snd->coordinator().deferral_pending());
  EXPECT_EQ(p.snd->coordinator().stats().deferrals_superseded, 1u);
  EXPECT_EQ(p.snd->coordinator().stats().deferred_resolved, 0u);
}

TEST(CoordinatorTest, MarkOnlySendLeavesDeferralPending) {
  CorePair p;
  attr::CallbackContext ctx;
  attr::AttrList deferred{{attr::kAdaptWhen, attr::kAdaptDeferred}};
  p.snd->coordinator().on_callback_result(deferred, ctx);

  // Reliability adaptations are orthogonal to the announced rate
  // adaptation; they must not count as its resolution.
  rudp::MessageSpec spec;
  spec.bytes = 700;
  attr::AttrList attrs{{attr::kAdaptMark, 0.4}};
  p.snd->send_with_attrs(spec, attrs);
  EXPECT_TRUE(p.snd->coordinator().deferral_pending());
  EXPECT_EQ(p.snd->coordinator().stats().deferred_resolved, 0u);
}

TEST(CoordinatorTest, CancelDeferralClearsAndCounts) {
  CorePair p;
  attr::CallbackContext ctx;
  attr::AttrList deferred{{attr::kAdaptWhen, attr::kAdaptDeferred}};
  p.snd->coordinator().on_callback_result(deferred, ctx);
  ASSERT_TRUE(p.snd->coordinator().deferral_pending());

  p.snd->coordinator().cancel_deferral();
  EXPECT_FALSE(p.snd->coordinator().deferral_pending());
  EXPECT_EQ(p.snd->coordinator().stats().deferrals_cancelled, 1u);

  // Cancelling with nothing pending is a no-op and is not counted.
  p.snd->coordinator().cancel_deferral();
  EXPECT_EQ(p.snd->coordinator().stats().deferrals_cancelled, 1u);
}

TEST(CoordinatorTest, CondCompensationUsesCurrentEratio) {
  CorePair p;
  const double w0 = p.snd->transport().congestion().cwnd();

  // The transport currently measures 30% loss...
  rudp::EpochReport report;
  report.loss_ratio = 0.30;
  p.snd->coordinator().on_epoch(report);

  // ...but the application adapted based on a stale 10% reading.
  rudp::MessageSpec spec;
  spec.bytes = 700;
  attr::AttrList attrs{{attr::kAdaptPktSize, 0.2},
                       {attr::kAdaptCondErrorRatio, 0.10},
                       {attr::kAppFrameBytes, std::int64_t{700}}};
  p.snd->send_with_attrs(spec, attrs);
  EXPECT_NEAR(p.snd->transport().congestion().cwnd(),
              w0 * (1.0 / 0.8) * (0.70 / 0.90), 1e-9);
  EXPECT_EQ(p.snd->coordinator().stats().cond_compensations, 1u);
}

TEST(CoordinatorTest, CondDisabledIgnoresCompensation) {
  rudp::RudpConfig cfg;
  CoordinatorConfig ccfg;
  ccfg.enable_cond_compensation = false;
  sim::Simulator sim;
  wire::DirectWirePair wires(sim, Duration::millis(15));
  IqRudpConnection snd(wires.a(), cfg, rudp::Role::Client, ccfg);
  IqRudpConnection rcv(wires.b(), cfg, rudp::Role::Server, ccfg);
  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::millis(200));

  const double w0 = snd.transport().congestion().cwnd();
  rudp::EpochReport report;
  report.loss_ratio = 0.30;
  snd.coordinator().on_epoch(report);
  attr::AttrList attrs{{attr::kAdaptPktSize, 0.2},
                       {attr::kAdaptCondErrorRatio, 0.10},
                       {attr::kAppFrameBytes, std::int64_t{700}}};
  snd.send_with_attrs({.bytes = 700}, attrs);
  EXPECT_NEAR(snd.transport().congestion().cwnd(), w0 * 1.25, 1e-9);
}

// --------------------------------------------------------- metric export --

TEST(MetricsExportTest, EpochsPublishNetAttributes) {
  CorePair p;
  for (int i = 0; i < 300; ++i) {
    p.snd->send({.bytes = 1400});
  }
  p.sim.run_until(TimePoint::zero() + Duration::seconds(60));
  auto& store = p.snd->attributes();
  ASSERT_TRUE(store.has(attr::kNetLossRatio));
  ASSERT_TRUE(store.has(attr::kNetRttMs));
  ASSERT_TRUE(store.has(attr::kNetCwndPkts));
  EXPECT_NEAR(*store.query_double(attr::kNetRttMs), 30.0, 10.0);
  EXPECT_GE(*store.query_double(attr::kNetLossRatio), 0.0);
}

TEST(MetricsExportTest, EpochsFeedCallbackRegistryAllMetrics) {
  // Regression: epochs must forward rtt / rate / cwnd to the callback
  // registry, not just the loss ratio — thresholds registered on any of the
  // NET_* metrics have to fire.
  CorePair p;
  int rtt_fired = 0, rate_fired = 0, cwnd_fired = 0;
  const auto noop = [](const attr::CallbackContext&) {
    return attr::AttrList{};
  };
  p.snd->callbacks().register_threshold(
      {.metric = attr::kNetRttMs, .upper = 1.0, .lower = -1.0},
      [&](const attr::CallbackContext& ctx) {
        ++rtt_fired;
        EXPECT_GT(ctx.value, 0.0);
        return attr::AttrList{};
      },
      noop);
  p.snd->callbacks().register_threshold(
      {.metric = attr::kNetRateBps, .upper = 1.0, .lower = -1.0},
      [&](const attr::CallbackContext&) {
        ++rate_fired;
        return attr::AttrList{};
      },
      noop);
  p.snd->callbacks().register_threshold(
      {.metric = attr::kNetCwndPkts, .upper = 1.0, .lower = -1.0},
      [&](const attr::CallbackContext&) {
        ++cwnd_fired;
        return attr::AttrList{};
      },
      noop);
  for (int i = 0; i < 200; ++i) p.snd->send({.bytes = 1400});
  p.sim.run_until(TimePoint::zero() + Duration::seconds(60));
  EXPECT_GT(rtt_fired, 0);
  EXPECT_GT(rate_fired, 0);
  EXPECT_GT(cwnd_fired, 0);
}

TEST(MetricsExportTest, EpochsFeedCallbackRegistryCmMetrics) {
  // Regression mirroring EpochsFeedCallbackRegistryAllMetrics for the
  // congestion-manager export path: with a CM attached, every epoch must
  // forward the iq.cm.* gauges to the callback registry so applications can
  // register thresholds on their apportioned share, not just on NET_*.
  cm::CmConfig mcfg;
  mcfg.aggregate.initial_cwnd = 8.0;
  cm::CongestionManager mgr(mcfg);  // outlives the pair: detach-before-dtor
  CorePair p;
  p.snd->attach_cm(mgr);
  int share_fired = 0, aggregate_fired = 0, changes_fired = 0;
  const auto noop = [](const attr::CallbackContext&) {
    return attr::AttrList{};
  };
  p.snd->callbacks().register_threshold(
      {.metric = attr::kCmShare, .upper = 1.0, .lower = -1.0},
      [&](const attr::CallbackContext& ctx) {
        ++share_fired;
        EXPECT_GT(ctx.value, 0.0);
        return attr::AttrList{};
      },
      noop);
  p.snd->callbacks().register_threshold(
      {.metric = attr::kCmAggregateCwnd, .upper = 1.0, .lower = -1.0},
      [&](const attr::CallbackContext&) {
        ++aggregate_fired;
        return attr::AttrList{};
      },
      noop);
  p.snd->callbacks().register_threshold(
      {.metric = attr::kCmApportionChanges, .upper = 0.5, .lower = -1.0},
      [&](const attr::CallbackContext&) {
        ++changes_fired;
        return attr::AttrList{};
      },
      noop);
  for (int i = 0; i < 200; ++i) p.snd->send({.bytes = 1400});
  p.sim.run_until(TimePoint::zero() + Duration::seconds(60));
  EXPECT_GT(share_fired, 0);
  EXPECT_GT(aggregate_fired, 0);
  // Attaching the flow was a structural apportionment, so the counter gauge
  // crosses 0.5 on the first export.
  EXPECT_GT(changes_fired, 0);
  auto& store = p.snd->attributes();
  ASSERT_TRUE(store.has(attr::kCmShare));
  ASSERT_TRUE(store.has(attr::kCmWeight));
  ASSERT_TRUE(store.has(attr::kCmFlows));
  EXPECT_EQ(*store.query_double(attr::kCmFlows), 1.0);
  p.snd->detach_cm();
}

TEST(MetricsExportTest, FailureCountersExportedPerEpoch) {
  // Regression: the robustness counters ride along with every epoch export,
  // and a healthy connection reads NET_FAILED = 0 (FailureReason::None).
  CorePair p;
  for (int i = 0; i < 200; ++i) p.snd->send({.bytes = 1400});
  p.sim.run_until(TimePoint::zero() + Duration::seconds(60));
  auto& store = p.snd->attributes();
  ASSERT_TRUE(store.has(attr::kNetConnectRetries));
  ASSERT_TRUE(store.has(attr::kNetRtoBackoffs));
  ASSERT_TRUE(store.has(attr::kNetKeepaliveMisses));
  ASSERT_TRUE(store.has(attr::kNetChecksumRejects));
  ASSERT_TRUE(store.has(attr::kNetSendsDropped));
  ASSERT_TRUE(store.has(attr::kNetFailed));
  EXPECT_EQ(*store.query_double(attr::kNetConnectRetries), 0.0);
  EXPECT_EQ(*store.query_double(attr::kNetChecksumRejects), 0.0);
  EXPECT_EQ(*store.query_double(attr::kNetSendsDropped), 0.0);
  EXPECT_EQ(*store.query_double(attr::kNetFailed), 0.0);
}

TEST(MetricsExportTest, FailurePublishesImmediatelyAndNotifiesObserver) {
  // A connection that never establishes produces no epochs, so the failure
  // path must publish NET_FAILED by itself, and the facade's error observer
  // must hear about it.
  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 1.0;  // nothing ever arrives
  wire::LossyWirePair wires(sim, lcfg);
  rudp::RudpConfig cfg;
  cfg.connect_retry = Duration::millis(100);
  cfg.max_connect_attempts = 2;
  IqRudpConnection snd(wires.a(), cfg, rudp::Role::Client);
  std::vector<rudp::FailureReason> observed;
  snd.set_error_observer(
      [&](rudp::FailureReason r) { observed.push_back(r); });
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::seconds(10));

  EXPECT_TRUE(snd.transport().failed());
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0], rudp::FailureReason::HandshakeTimeout);
  auto& store = snd.attributes();
  ASSERT_TRUE(store.has(attr::kNetFailed));
  EXPECT_EQ(*store.query_double(attr::kNetFailed),
            static_cast<double>(rudp::FailureReason::HandshakeTimeout));
  EXPECT_EQ(*store.query_double(attr::kNetConnectRetries), 1.0);
}

TEST(IqConnectionTest, ThresholdCallbackDrivesCoordination) {
  // Full loop: epochs → registry → callback returns ADAPT_MARK →
  // coordinator enables discard.
  CorePair p;
  int fired = 0;
  p.snd->register_error_ratio_callbacks(
      /*upper=*/0.0,  // any epoch (loss >= 0) triggers the upper callback
      /*lower=*/-1.0,
      [&](const attr::CallbackContext&) {
        ++fired;
        return attr::AttrList{{attr::kAdaptMark, 0.5}};
      },
      [](const attr::CallbackContext&) { return attr::AttrList{}; });
  for (int i = 0; i < 200; ++i) p.snd->send({.bytes = 1400});
  p.sim.run_until(TimePoint::zero() + Duration::seconds(60));
  EXPECT_GT(fired, 0);
  EXPECT_TRUE(p.snd->transport().discard_unmarked());
}

TEST(IqConnectionTest, SendWithAttrsDeliversData) {
  CorePair p;
  std::vector<rudp::DeliveredMessage> got;
  p.rcv->set_message_handler(
      [&](const rudp::DeliveredMessage& m) { got.push_back(m); });
  attr::AttrList attrs{{attr::kAdaptPktSize, 0.1}};
  p.snd->send_with_attrs({.bytes = 5000}, attrs);
  p.sim.run_until(TimePoint::zero() + Duration::seconds(5));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].bytes, 5000);
  // The adaptation attributes ride in-band to the receiver.
  EXPECT_EQ(got[0].attrs.get_double(attr::kAdaptPktSize), 0.1);
}

}  // namespace
}  // namespace iq::core
