// Feature tests for the less-travelled protocol paths: delayed acks,
// mid-connection tolerance re-advertisement, close during transfer, and
// one-way-delay accounting.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq::rudp {
namespace {

struct FeaturePair {
  sim::Simulator sim;
  std::unique_ptr<wire::DirectWirePair> direct;
  std::unique_ptr<wire::LossyWirePair> lossy;
  std::unique_ptr<RudpConnection> sender;
  std::unique_ptr<RudpConnection> receiver;
  std::vector<DeliveredMessage> delivered;

  FeaturePair(RudpConfig scfg, RudpConfig rcfg) {
    direct = std::make_unique<wire::DirectWirePair>(sim, Duration::millis(15));
    init(direct->a(), direct->b(), scfg, rcfg);
  }
  FeaturePair(const wire::LossyConfig& lcfg, RudpConfig scfg,
              RudpConfig rcfg) {
    lossy = std::make_unique<wire::LossyWirePair>(sim, lcfg);
    init(lossy->a(), lossy->b(), scfg, rcfg);
  }

  void init(SegmentWire& a, SegmentWire& b, RudpConfig scfg,
            RudpConfig rcfg) {
    sender = std::make_unique<RudpConnection>(a, scfg, Role::Client);
    receiver = std::make_unique<RudpConnection>(b, rcfg, Role::Server);
    receiver->set_message_handler(
        [this](const DeliveredMessage& m) { delivered.push_back(m); });
    receiver->listen();
    sender->connect();
    sim.run_until(TimePoint::zero() + Duration::millis(200));
  }

  void run_s(double s) { sim.run_until(sim.now() + Duration::from_seconds(s)); }
};

// ---------------------------------------------------------- delayed acks --

TEST(DelayedAckTest, FewerAcksSameDelivery) {
  RudpConfig eager;
  RudpConfig delayed;
  delayed.ack_every = 4;

  FeaturePair p1(eager, eager);
  FeaturePair p2(eager, delayed);
  for (int i = 0; i < 40; ++i) {
    p1.sender->send_message({.bytes = 5000});
    p2.sender->send_message({.bytes = 5000});
  }
  p1.run_s(20);
  p2.run_s(20);
  EXPECT_EQ(p1.delivered.size(), 40u);
  EXPECT_EQ(p2.delivered.size(), 40u);
  // Batched acks: at most ~1/4 of the eager count (plus flush-timer acks).
  EXPECT_LT(p2.receiver->stats().acks_sent,
            p1.receiver->stats().acks_sent / 2);
}

TEST(DelayedAckTest, FlushTimerBoundsAckLatency) {
  RudpConfig rcfg;
  rcfg.ack_every = 100;             // effectively "never by count"
  rcfg.ack_delay = Duration::millis(50);
  FeaturePair p({}, rcfg);
  p.sender->send_message({.bytes = 1000});  // a single in-order segment
  p.run_s(1.0);
  // The flush timer must have acked it; the sender's buffer is clean.
  EXPECT_TRUE(p.sender->send_idle());
  EXPECT_EQ(p.delivered.size(), 1u);
}

TEST(DelayedAckTest, ReliableUnderLossWithDelayedAcks) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.15;
  lcfg.seed = 21;
  RudpConfig scfg;
  RudpConfig rcfg;
  rcfg.ack_every = 3;
  FeaturePair p(lcfg, scfg, rcfg);
  ASSERT_TRUE(p.sender->established());
  for (int i = 0; i < 40; ++i) p.sender->send_message({.bytes = 4000});
  p.run_s(120);
  EXPECT_EQ(p.delivered.size(), 40u);
}

// ------------------------------------------- tolerance re-advertisement ---

TEST(ToleranceUpdateTest, MidConnectionUpdateReachesSender) {
  RudpConfig scfg;
  RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.1;
  FeaturePair p(scfg, rcfg);
  EXPECT_DOUBLE_EQ(p.sender->peer_recv_tolerance(), 0.1);

  p.receiver->set_local_recv_tolerance(0.6);
  p.run_s(0.5);
  EXPECT_DOUBLE_EQ(p.sender->peer_recv_tolerance(), 0.6);
}

TEST(ToleranceUpdateTest, RaisedToleranceEnablesMoreSkips) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.3;
  lcfg.seed = 31;
  RudpConfig scfg;
  RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.0;  // initially fully reliable
  FeaturePair p(lcfg, scfg, rcfg);
  ASSERT_TRUE(p.sender->established());

  for (int i = 0; i < 30; ++i) {
    p.sender->send_message({.bytes = 1400, .marked = false});
  }
  p.run_s(60);
  EXPECT_EQ(p.sender->stats().messages_skipped, 0u);
  EXPECT_EQ(p.delivered.size(), 30u);

  p.receiver->set_local_recv_tolerance(0.5);
  p.run_s(1);
  for (int i = 0; i < 30; ++i) {
    p.sender->send_message({.bytes = 1400, .marked = false});
  }
  p.run_s(120);
  EXPECT_GT(p.sender->stats().messages_skipped, 0u);
  EXPECT_EQ(p.delivered.size() + p.receiver->stats().messages_dropped, 60u);
}

// ---------------------------------------------------- close mid-transfer --

TEST(CloseTest, CloseDuringTransferIsClean) {
  FeaturePair p(RudpConfig{}, RudpConfig{});
  for (int i = 0; i < 100; ++i) p.sender->send_message({.bytes = 10'000});
  p.run_s(0.2);  // transfer in full flight
  p.sender->close();
  EXPECT_EQ(p.sender->state(), ConnState::Closed);
  p.run_s(5);
  // Receiver learned of the close; no timers keep the sim alive forever.
  EXPECT_EQ(p.receiver->state(), ConnState::Closed);
  EXPECT_TRUE(p.sim.idle());
}

TEST(CloseTest, SendAfterCloseDoesNotTransmit) {
  FeaturePair p(RudpConfig{}, RudpConfig{});
  p.sender->close();
  const auto sent_before = p.sender->stats().segments_sent;
  p.sender->send_message({.bytes = 1000});
  p.run_s(2);
  EXPECT_EQ(p.sender->stats().segments_sent, sent_before);
  EXPECT_TRUE(p.delivered.empty());
}

// ------------------------------------------------------- one-way delay ----

TEST(OneWayDelayTest, MatchesPathDelay) {
  FeaturePair p(RudpConfig{}, RudpConfig{});
  p.sender->send_message({.bytes = 500});
  p.run_s(2);
  ASSERT_EQ(p.delivered.size(), 1u);
  const Duration owd = p.delivered[0].delivered - p.delivered[0].first_sent;
  // One-way delay of the 15 ms pipe (plus microsecond rounding).
  EXPECT_NEAR(owd.to_millis(), 15.0, 0.5);
}

}  // namespace
}  // namespace iq::rudp
