// Tests for the IQ-FTP module: manifest/framing, complete transfer,
// selective loss under congestion, hole reporting.

#include <gtest/gtest.h>

#include <memory>

#include "iq/ftp/iq_ftp.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/net/sinks.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/workload/cbr_source.hpp"

namespace iq::ftp {
namespace {

struct FtpRig {
  sim::Simulator sim;
  net::Network network{sim};
  net::Dumbbell db{network, {.pairs = 2}};
  net::CountingSink cross_sink;
  std::unique_ptr<workload::CbrSource> cross;
  std::unique_ptr<wire::SimWire> wsnd;
  std::unique_ptr<wire::SimWire> wrcv;
  std::unique_ptr<core::IqRudpConnection> snd;
  std::unique_ptr<core::IqRudpConnection> rcv;
  std::unique_ptr<IqFtpSender> sender;
  std::unique_ptr<IqFtpReceiver> receiver;

  FtpRig(const FileSpec& file, CriticalFn critical, double tolerance,
         std::int64_t cross_bps) {
    if (cross_bps > 0) {
      db.right(1).bind(9000, &cross_sink);
      workload::CbrConfig cc;
      cc.rate_bps = cross_bps;
      cross = std::make_unique<workload::CbrSource>(network, db.left(1),
                                                    db.right(1), cc);
      cross->start();
    }
    const net::Endpoint a{db.left(0).id(), 21};
    const net::Endpoint b{db.right(0).id(), 21};
    wsnd = std::make_unique<wire::SimWire>(network, a, b, 1);
    wrcv = std::make_unique<wire::SimWire>(network, b, a, 1);
    rudp::RudpConfig scfg;
    rudp::RudpConfig rcfg;
    rcfg.recv_loss_tolerance = tolerance;
    snd = std::make_unique<core::IqRudpConnection>(*wsnd, scfg,
                                                   rudp::Role::Client);
    rcv = std::make_unique<core::IqRudpConnection>(*wrcv, rcfg,
                                                   rudp::Role::Server);
    sender = std::make_unique<IqFtpSender>(*snd, file, std::move(critical));
    receiver = std::make_unique<IqFtpReceiver>(*rcv);
    rcv->listen();
    snd->set_established_handler([this] { sender->start(); });
    snd->connect();
  }

  void run_until_complete(double max_s) {
    const TimePoint deadline = TimePoint::zero() + Duration::from_seconds(max_s);
    while (sim.now() < deadline && !receiver->complete()) {
      sim.run_for(Duration::millis(100));
    }
  }
};

TEST(FileSpecTest, BlockGeometry) {
  FileSpec f{.total_bytes = 100'000, .block_bytes = 16'384};
  EXPECT_EQ(f.block_count(), 7u);
  EXPECT_EQ(f.bytes_of_block(0), 16'384);
  EXPECT_EQ(f.bytes_of_block(6), 100'000 - 6 * 16'384);
}

TEST(FileSpecTest, ExactMultiple) {
  FileSpec f{.total_bytes = 32'768, .block_bytes = 16'384};
  EXPECT_EQ(f.block_count(), 2u);
  EXPECT_EQ(f.bytes_of_block(1), 16'384);
}

TEST(IqFtpTest, UncongestedTransferCompletesFully) {
  FileSpec file{.total_bytes = 1'000'000, .block_bytes = 16'384};
  FtpRig rig(file, [](std::uint64_t) { return true; }, 0.0, 0);
  rig.run_until_complete(60);
  ASSERT_TRUE(rig.receiver->complete());
  const auto& rep = rig.receiver->report();
  EXPECT_EQ(rep.blocks_total, file.block_count());
  EXPECT_EQ(rep.blocks_received, file.block_count());
  EXPECT_EQ(rep.bytes_received, file.total_bytes);
  EXPECT_TRUE(rep.missing.empty());
  EXPECT_TRUE(rig.sender->done());
}

TEST(IqFtpTest, SelectiveTransferKeepsCriticalBlocks) {
  FileSpec file{.total_bytes = 4'000'000, .block_bytes = 16'384};
  auto critical = [](std::uint64_t b) { return b < 8 || b % 10 == 0; };
  FtpRig rig(file, critical, /*tolerance=*/0.5, /*cross=*/17'000'000);
  rig.run_until_complete(300);
  ASSERT_TRUE(rig.receiver->complete());
  const auto& rep = rig.receiver->report();
  // Every critical block arrived.
  EXPECT_EQ(rep.critical_received, rig.sender->critical_blocks());
  for (std::uint64_t missing : rep.missing) {
    EXPECT_FALSE(critical(missing)) << "critical block " << missing
                                    << " was abandoned";
  }
  // Under heavy congestion with 50% tolerance, some blocks were abandoned.
  EXPECT_GT(rep.missing.size(), 0u);
  EXPECT_LE(static_cast<double>(rep.missing.size()),
            0.5 * static_cast<double>(rep.blocks_total) + 1);
}

TEST(IqFtpTest, SelectiveFasterThanReliableUnderCongestion) {
  FileSpec file{.total_bytes = 3'000'000, .block_bytes = 16'384};
  auto critical = [](std::uint64_t b) { return b % 10 == 0; };

  FtpRig lossy(file, critical, 0.5, 17'000'000);
  lossy.run_until_complete(300);
  FtpRig reliable(file, [](std::uint64_t) { return true; }, 0.0, 17'000'000);
  reliable.run_until_complete(300);

  ASSERT_TRUE(lossy.receiver->complete());
  ASSERT_TRUE(reliable.receiver->complete());
  EXPECT_LT(lossy.receiver->report().duration_s(),
            reliable.receiver->report().duration_s());
  EXPECT_TRUE(reliable.receiver->report().missing.empty());
}

TEST(IqFtpTest, HoleFillSecondPassCompletesTheFile) {
  FileSpec file{.total_bytes = 2'000'000, .block_bytes = 16'384};
  FtpRig rig(file, [](std::uint64_t b) { return b % 5 == 0; }, 0.5,
             17'000'000);
  rig.run_until_complete(300);
  ASSERT_TRUE(rig.receiver->complete());
  const auto holes = rig.receiver->report().missing;
  ASSERT_GT(holes.size(), 0u);

  // Stop the cross traffic (transfer window found) and fill the holes.
  rig.cross->stop();
  rig.sender->fill_holes(holes);
  const TimePoint deadline = rig.sim.now() + Duration::seconds(120);
  while (rig.sim.now() < deadline &&
         !rig.receiver->report().missing.empty()) {
    rig.sim.run_for(Duration::millis(100));
  }
  EXPECT_TRUE(rig.receiver->report().missing.empty());
  EXPECT_EQ(rig.receiver->report().blocks_received, file.block_count());
  EXPECT_EQ(rig.receiver->report().bytes_received, file.total_bytes);
}

TEST(IqFtpTest, MissingListMatchesBitmap) {
  FileSpec file{.total_bytes = 2'000'000, .block_bytes = 16'384};
  FtpRig rig(file, [](std::uint64_t b) { return b % 2 == 0; }, 0.5,
             17'000'000);
  rig.run_until_complete(300);
  ASSERT_TRUE(rig.receiver->complete());
  const auto& rep = rig.receiver->report();
  EXPECT_EQ(rep.blocks_received + rep.missing.size(), rep.blocks_total);
  // Missing indices are sorted and unique by construction.
  for (std::size_t i = 1; i < rep.missing.size(); ++i) {
    EXPECT_LT(rep.missing[i - 1], rep.missing[i]);
  }
}

}  // namespace
}  // namespace iq::ftp
