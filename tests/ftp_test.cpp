// Tests for the IQ-FTP module: manifest/framing, complete transfer,
// selective loss under congestion, hole reporting, deterministic content
// digests, per-chunk deadlines, and resume across terminal connection
// failure.

#include <gtest/gtest.h>

#include <memory>

#include "iq/fault/injector.hpp"
#include "iq/ftp/iq_ftp.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/net/sinks.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/workload/cbr_source.hpp"

namespace iq::ftp {
namespace {

struct FtpRig {
  sim::Simulator sim;
  net::Network network{sim};
  net::Dumbbell db{network, {.pairs = 2}};
  net::CountingSink cross_sink;
  std::unique_ptr<workload::CbrSource> cross;
  std::unique_ptr<wire::SimWire> wsnd;
  std::unique_ptr<wire::SimWire> wrcv;
  std::unique_ptr<core::IqRudpConnection> snd;
  std::unique_ptr<core::IqRudpConnection> rcv;
  std::unique_ptr<IqFtpSender> sender;
  std::unique_ptr<IqFtpReceiver> receiver;

  FtpRig(const FileSpec& file, CriticalFn critical, double tolerance,
         std::int64_t cross_bps) {
    if (cross_bps > 0) {
      db.right(1).bind(9000, &cross_sink);
      workload::CbrConfig cc;
      cc.rate_bps = cross_bps;
      cross = std::make_unique<workload::CbrSource>(network, db.left(1),
                                                    db.right(1), cc);
      cross->start();
    }
    const net::Endpoint a{db.left(0).id(), 21};
    const net::Endpoint b{db.right(0).id(), 21};
    wsnd = std::make_unique<wire::SimWire>(network, a, b, 1);
    wrcv = std::make_unique<wire::SimWire>(network, b, a, 1);
    rudp::RudpConfig scfg;
    rudp::RudpConfig rcfg;
    rcfg.recv_loss_tolerance = tolerance;
    snd = std::make_unique<core::IqRudpConnection>(*wsnd, scfg,
                                                   rudp::Role::Client);
    rcv = std::make_unique<core::IqRudpConnection>(*wrcv, rcfg,
                                                   rudp::Role::Server);
    sender = std::make_unique<IqFtpSender>(*snd, file, std::move(critical));
    receiver = std::make_unique<IqFtpReceiver>(*rcv);
    rcv->listen();
    snd->set_established_handler([this] { sender->start(); });
    snd->connect();
  }

  void run_until_complete(double max_s) {
    const TimePoint deadline = TimePoint::zero() + Duration::from_seconds(max_s);
    while (sim.now() < deadline && !receiver->complete()) {
      sim.run_for(Duration::millis(100));
    }
  }
};

TEST(FileSpecTest, BlockGeometry) {
  FileSpec f{.total_bytes = 100'000, .block_bytes = 16'384};
  EXPECT_EQ(f.block_count(), 7u);
  EXPECT_EQ(f.bytes_of_block(0), 16'384);
  EXPECT_EQ(f.bytes_of_block(6), 100'000 - 6 * 16'384);
}

TEST(FileSpecTest, ExactMultiple) {
  FileSpec f{.total_bytes = 32'768, .block_bytes = 16'384};
  EXPECT_EQ(f.block_count(), 2u);
  EXPECT_EQ(f.bytes_of_block(1), 16'384);
}

TEST(IqFtpTest, UncongestedTransferCompletesFully) {
  FileSpec file{.total_bytes = 1'000'000, .block_bytes = 16'384};
  FtpRig rig(file, [](std::uint64_t) { return true; }, 0.0, 0);
  rig.run_until_complete(60);
  ASSERT_TRUE(rig.receiver->complete());
  const auto& rep = rig.receiver->report();
  EXPECT_EQ(rep.blocks_total, file.block_count());
  EXPECT_EQ(rep.blocks_received, file.block_count());
  EXPECT_EQ(rep.bytes_received, file.total_bytes);
  EXPECT_TRUE(rep.missing.empty());
  EXPECT_TRUE(rig.sender->done());
}

TEST(IqFtpTest, SelectiveTransferKeepsCriticalBlocks) {
  FileSpec file{.total_bytes = 4'000'000, .block_bytes = 16'384};
  auto critical = [](std::uint64_t b) { return b < 8 || b % 10 == 0; };
  FtpRig rig(file, critical, /*tolerance=*/0.5, /*cross=*/17'000'000);
  rig.run_until_complete(300);
  ASSERT_TRUE(rig.receiver->complete());
  const auto& rep = rig.receiver->report();
  // Every critical block arrived.
  EXPECT_EQ(rep.critical_received, rig.sender->critical_blocks());
  for (std::uint64_t missing : rep.missing) {
    EXPECT_FALSE(critical(missing)) << "critical block " << missing
                                    << " was abandoned";
  }
  // Under heavy congestion with 50% tolerance, some blocks were abandoned.
  EXPECT_GT(rep.missing.size(), 0u);
  EXPECT_LE(static_cast<double>(rep.missing.size()),
            0.5 * static_cast<double>(rep.blocks_total) + 1);
}

TEST(IqFtpTest, SelectiveFasterThanReliableUnderCongestion) {
  FileSpec file{.total_bytes = 3'000'000, .block_bytes = 16'384};
  auto critical = [](std::uint64_t b) { return b % 10 == 0; };

  FtpRig lossy(file, critical, 0.5, 17'000'000);
  lossy.run_until_complete(300);
  FtpRig reliable(file, [](std::uint64_t) { return true; }, 0.0, 17'000'000);
  reliable.run_until_complete(300);

  ASSERT_TRUE(lossy.receiver->complete());
  ASSERT_TRUE(reliable.receiver->complete());
  EXPECT_LT(lossy.receiver->report().duration_s(),
            reliable.receiver->report().duration_s());
  EXPECT_TRUE(reliable.receiver->report().missing.empty());
}

TEST(IqFtpTest, HoleFillSecondPassCompletesTheFile) {
  FileSpec file{.total_bytes = 2'000'000, .block_bytes = 16'384};
  FtpRig rig(file, [](std::uint64_t b) { return b % 5 == 0; }, 0.5,
             17'000'000);
  rig.run_until_complete(300);
  ASSERT_TRUE(rig.receiver->complete());
  const auto holes = rig.receiver->report().missing;
  ASSERT_GT(holes.size(), 0u);

  // Stop the cross traffic (transfer window found) and fill the holes.
  rig.cross->stop();
  rig.sender->fill_holes(holes);
  const TimePoint deadline = rig.sim.now() + Duration::seconds(120);
  while (rig.sim.now() < deadline &&
         !rig.receiver->report().missing.empty()) {
    rig.sim.run_for(Duration::millis(100));
  }
  EXPECT_TRUE(rig.receiver->report().missing.empty());
  EXPECT_EQ(rig.receiver->report().blocks_received, file.block_count());
  EXPECT_EQ(rig.receiver->report().bytes_received, file.total_bytes);
}

TEST(IqFtpTest, MissingListMatchesBitmap) {
  FileSpec file{.total_bytes = 2'000'000, .block_bytes = 16'384};
  FtpRig rig(file, [](std::uint64_t b) { return b % 2 == 0; }, 0.5,
             17'000'000);
  rig.run_until_complete(300);
  ASSERT_TRUE(rig.receiver->complete());
  const auto& rep = rig.receiver->report();
  EXPECT_EQ(rep.blocks_received + rep.missing.size(), rep.blocks_total);
  // Missing indices are sorted and unique by construction.
  for (std::size_t i = 1; i < rep.missing.size(); ++i) {
    EXPECT_LT(rep.missing[i - 1], rep.missing[i]);
  }
}

TEST(FileImageTest, DeterministicAcrossInstances) {
  FileSpec file{.total_bytes = 100'000, .block_bytes = 16'384};
  FileImage a(file, 42);
  FileImage b(file, 42);
  FileImage c(file, 43);
  ASSERT_EQ(a.block_crcs().size(), file.block_count());
  EXPECT_EQ(a.block_crcs(), b.block_crcs());
  EXPECT_NE(a.block_crcs(), c.block_crcs());
}

TEST(FileImageTest, PartialFinalBlockDigestsOnlyItsBytes) {
  // Same content seed, different tail length → the last block's digest
  // must differ (only `bytes_of_block` bytes are hashed, not the buffer).
  FileSpec full{.total_bytes = 2 * 16'384, .block_bytes = 16'384};
  FileSpec ragged{.total_bytes = 16'384 + 100, .block_bytes = 16'384};
  FileImage a(full, 42);
  FileImage b(ragged, 42);
  EXPECT_EQ(a.block_crc(0), b.block_crc(0));
  EXPECT_NE(a.block_crc(1), b.block_crc(1));
}

TEST(IqFtpTest, ZeroLengthFileCompletesOnManifestAlone) {
  FileSpec file{.total_bytes = 0, .block_bytes = 16'384};
  FtpRig rig(file, [](std::uint64_t) { return true; }, 0.0, 0);
  rig.run_until_complete(30);
  ASSERT_TRUE(rig.receiver->complete());
  const auto& rep = rig.receiver->report();
  EXPECT_EQ(rep.blocks_total, 0u);
  EXPECT_EQ(rep.blocks_received, 0u);
  EXPECT_EQ(rep.bytes_received, 0);
  EXPECT_TRUE(rep.missing.empty());
  EXPECT_DOUBLE_EQ(rep.deadline_hit_ratio(), 1.0);
  EXPECT_TRUE(rig.sender->done());
}

TEST(IqFtpTest, PartialFinalChunkDeliversExactByteCount) {
  // total_bytes deliberately not a multiple of block_bytes.
  FileSpec file{.total_bytes = 1'000'000 + 777, .block_bytes = 16'384};
  FtpRig rig(file, [](std::uint64_t) { return true; }, 0.0, 0);
  rig.run_until_complete(60);
  ASSERT_TRUE(rig.receiver->complete());
  const auto& rep = rig.receiver->report();
  EXPECT_EQ(rep.blocks_received, file.block_count());
  EXPECT_EQ(rep.bytes_received, file.total_bytes);
  EXPECT_EQ(file.bytes_of_block(file.block_count() - 1),
            file.total_bytes % file.block_bytes);
}

TEST(IqFtpTest, DeadlinePolicyScoresOnTimeBlocks) {
  FileSpec file{.total_bytes = 500'000, .block_bytes = 16'384};

  // Generous budget on a clean link: every block makes its deadline.
  FtpRig generous(file, [](std::uint64_t) { return true; }, 0.0, 0);
  generous.receiver->set_deadline_policy(
      {.grace = Duration::seconds(30), .per_block = Duration::millis(100)});
  generous.run_until_complete(60);
  ASSERT_TRUE(generous.receiver->complete());
  EXPECT_EQ(generous.receiver->report().blocks_on_time, file.block_count());
  EXPECT_DOUBLE_EQ(generous.receiver->report().deadline_hit_ratio(), 1.0);

  // An impossible budget: nothing can beat a zero-grace nanosecond clock.
  FtpRig tight(file, [](std::uint64_t) { return true; }, 0.0, 0);
  tight.receiver->set_deadline_policy(
      {.grace = Duration::zero(), .per_block = Duration::nanos(1)});
  tight.run_until_complete(60);
  ASSERT_TRUE(tight.receiver->complete());
  EXPECT_EQ(tight.receiver->report().blocks_on_time, 0u);
  EXPECT_DOUBLE_EQ(tight.receiver->report().deadline_hit_ratio(), 0.0);
}

TEST(IqFtpTest, CleanTransferMatchesImageDigests) {
  FileSpec file{.total_bytes = 1'000'000, .block_bytes = 16'384};
  FileImage image(file, 7);
  sim::Simulator sim;
  net::Network network{sim};
  net::Dumbbell db{network, {.pairs = 1}};
  const net::Endpoint a{db.left(0).id(), 21};
  const net::Endpoint b{db.right(0).id(), 21};
  wire::SimWire wsnd(network, a, b, 1);
  wire::SimWire wrcv(network, b, a, 1);
  core::IqRudpConnection snd(wsnd, {}, rudp::Role::Client);
  core::IqRudpConnection rcv(wrcv, {}, rudp::Role::Server);
  IqFtpSender sender(snd, file, [](std::uint64_t) { return true; }, &image);
  IqFtpReceiver receiver(rcv);
  rcv.listen();
  snd.set_established_handler([&] { sender.start(); });
  snd.connect();
  const TimePoint deadline = TimePoint::zero() + Duration::seconds(60);
  while (sim.now() < deadline && !receiver.complete()) {
    sim.run_for(Duration::millis(100));
  }
  ASSERT_TRUE(receiver.complete());
  EXPECT_TRUE(receiver.matches(image));
  // A different content seed must not match.
  FileImage other(file, 8);
  EXPECT_FALSE(receiver.matches(other));
}

// The acceptance scenario for survivable transfer: a mid-transfer blackout
// kills the connection terminally; both endpoints re-attach to a fresh
// connection pair and the transfer resumes to a byte-identical file.
TEST(FtpResumeTest, SurvivesTerminalFailureByteIdentical) {
  FileSpec file{.total_bytes = 6'000'000, .block_bytes = 16'384};
  FileImage image(file, 99);

  sim::Simulator sim;
  net::Network network{sim};
  net::Dumbbell db{network, {.pairs = 1}};
  fault::FaultInjector injector(sim);
  injector.add_target(db.bottleneck());
  injector.add_target(db.bottleneck_reverse());
  // Dark from 2s to 10s — far longer than the sender's RTO-streak budget.
  fault::FaultPlan plan;
  plan.blackout(Duration::seconds(2), Duration::seconds(8), 0);
  plan.blackout(Duration::seconds(2), Duration::seconds(8), 1);
  injector.arm(plan);

  rudp::RudpConfig cfg;
  cfg.max_rto_streak = 3;  // give up ~1.4s into the outage

  auto open_pair = [&](std::uint16_t port) {
    const net::Endpoint a{db.left(0).id(), port};
    const net::Endpoint b{db.right(0).id(), port};
    struct Gen {
      std::unique_ptr<wire::SimWire> wsnd, wrcv;
      std::unique_ptr<core::IqRudpConnection> snd, rcv;
    } g;
    g.wsnd = std::make_unique<wire::SimWire>(network, a, b, 1);
    g.wrcv = std::make_unique<wire::SimWire>(network, b, a, 1);
    g.snd = std::make_unique<core::IqRudpConnection>(*g.wsnd, cfg,
                                                     rudp::Role::Client);
    g.rcv = std::make_unique<core::IqRudpConnection>(*g.wrcv, cfg,
                                                     rudp::Role::Server);
    return g;
  };

  auto gen0 = open_pair(21);
  IqFtpSender sender(*gen0.snd, file, [](std::uint64_t) { return true; },
                     &image);
  IqFtpReceiver receiver(*gen0.rcv);
  bool failed = false;
  gen0.snd->set_error_observer([&](rudp::FailureReason) { failed = true; });
  gen0.rcv->listen();
  gen0.snd->set_established_handler([&] { sender.start(); });
  gen0.snd->connect();

  // Run until the blackout kills the sender's connection.
  const TimePoint fail_deadline = TimePoint::zero() + Duration::seconds(9);
  while (sim.now() < fail_deadline && !failed) {
    sim.run_for(Duration::millis(50));
  }
  ASSERT_TRUE(failed);
  ASSERT_TRUE(gen0.snd->transport().failed());
  EXPECT_FALSE(receiver.complete());
  const std::uint64_t received_before =
      receiver.report().blocks_received;
  EXPECT_GT(received_before, 0u);
  EXPECT_LT(received_before, file.block_count());

  // Fresh connection generation on a new port; the old pair stays alive
  // until attach() has harvested its counters.
  auto gen1 = open_pair(22);
  sender.attach(*gen1.snd);
  receiver.attach(*gen1.rcv);
  EXPECT_TRUE(sender.awaiting_resume());
  EXPECT_EQ(sender.resumes(), 1u);
  gen1.rcv->listen();
  gen1.snd->set_established_handler([&] { sender.start(); });
  gen1.snd->connect();

  const TimePoint done_deadline = TimePoint::zero() + Duration::seconds(120);
  while (sim.now() < done_deadline && !receiver.complete()) {
    sim.run_for(Duration::millis(100));
  }
  ASSERT_TRUE(receiver.complete());
  const auto& rep = receiver.report();
  EXPECT_TRUE(rep.missing.empty());
  EXPECT_EQ(rep.blocks_received, file.block_count());
  EXPECT_EQ(rep.bytes_received, file.total_bytes);
  EXPECT_FALSE(sender.awaiting_resume());
  // Byte identity: every delivered digest matches the generating image.
  EXPECT_TRUE(receiver.matches(image));
}

}  // namespace
}  // namespace iq::ftp
