// Tests for the FEC reliability class: XOR parity group encoder/decoder,
// the adaptive redundancy controller, the transport integration (recovery
// without retransmission, deferral + RTO fallback), the coordinator's
// parity-overhead window debit, and the end-to-end path over LossyWire.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "iq/core/iq_connection.hpp"
#include "iq/echo/policies.hpp"
#include "iq/fec/group.hpp"
#include "iq/fec/redundancy.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq {
namespace {

using rudp::DeliveredMessage;
using rudp::RecvSegment;
using rudp::Segment;
using rudp::SegmentType;

Segment data_seg(rudp::WireSeq seq, std::int32_t bytes = 1000,
                 std::uint32_t msg_id = 0) {
  Segment s;
  s.type = SegmentType::Data;
  s.seq = seq;
  s.msg_id = msg_id != 0 ? msg_id : seq;
  s.frag_index = 0;
  s.frag_count = 1;
  s.payload_bytes = bytes;
  s.fec_protected = true;
  return s;
}

// --------------------------------------------------------------- encoder --

TEST(FecEncoderTest, ClosesGroupAtK) {
  fec::FecEncoder enc({.group_size = 3, .interleave = 1});
  EXPECT_FALSE(enc.add(data_seg(1)).has_value());
  EXPECT_FALSE(enc.add(data_seg(2, 500)).has_value());
  auto parity = enc.add(data_seg(3, 2000));
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->type, SegmentType::Parity);
  ASSERT_EQ(parity->fec_members.size(), 3u);
  EXPECT_EQ(parity->fec_members[0].seq, 1u);
  EXPECT_EQ(parity->fec_members[2].seq, 3u);
  // Parity payload is the largest member payload (XOR width).
  EXPECT_EQ(parity->payload_bytes, 2000);
  EXPECT_EQ(enc.groups_closed(), 1u);
  EXPECT_EQ(enc.open_groups(), 0u);
}

TEST(FecEncoderTest, InterleaveRoundRobinsLanes) {
  fec::FecEncoder enc({.group_size = 2, .interleave = 2});
  EXPECT_FALSE(enc.add(data_seg(1)).has_value());  // lane 0
  EXPECT_FALSE(enc.add(data_seg(2)).has_value());  // lane 1
  auto p0 = enc.add(data_seg(3));                  // closes lane 0
  ASSERT_TRUE(p0.has_value());
  ASSERT_EQ(p0->fec_members.size(), 2u);
  EXPECT_EQ(p0->fec_members[0].seq, 1u);
  EXPECT_EQ(p0->fec_members[1].seq, 3u);  // non-consecutive: burst-tolerant
  auto p1 = enc.add(data_seg(4));          // closes lane 1
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->fec_members[0].seq, 2u);
  EXPECT_NE(p0->fec_group, p1->fec_group);
}

TEST(FecEncoderTest, FlushClosesPartialGroups) {
  fec::FecEncoder enc({.group_size = 4, .interleave = 1});
  enc.add(data_seg(1));
  enc.add(data_seg(2));
  EXPECT_EQ(enc.open_groups(), 1u);
  auto flushed = enc.flush();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].fec_members.size(), 2u);
  EXPECT_EQ(enc.open_groups(), 0u);
  EXPECT_TRUE(enc.flush().empty());
}

TEST(FecEncoderTest, RetuneAppliesToNextGroup) {
  fec::FecEncoder enc({.group_size = 4, .interleave = 1});
  enc.add(data_seg(1));
  enc.set_group_size(2);
  // The open group keeps its captured target of 4.
  EXPECT_FALSE(enc.add(data_seg(2)).has_value());
  EXPECT_FALSE(enc.add(data_seg(3)).has_value());
  EXPECT_TRUE(enc.add(data_seg(4)).has_value());
  // The next group closes at the retuned size.
  EXPECT_FALSE(enc.add(data_seg(5)).has_value());
  EXPECT_TRUE(enc.add(data_seg(6)).has_value());
}

// --------------------------------------------------------------- decoder --

std::vector<RecvSegment> members(std::initializer_list<rudp::Seq> seqs) {
  std::vector<RecvSegment> out;
  for (rudp::Seq s : seqs) {
    RecvSegment rs;
    rs.seq = s;
    rs.msg_id = static_cast<std::uint32_t>(s);
    rs.payload_bytes = 1000;
    rs.fec = true;
    out.push_back(rs);
  }
  return out;
}

fec::FecDecoder::HaveFn have_all_except(std::vector<rudp::Seq> missing) {
  return [missing](rudp::Seq s) {
    for (rudp::Seq m : missing) {
      if (m == s) return false;
    }
    return true;
  };
}

TEST(FecDecoderTest, RecoversSingleMissingMember) {
  fec::FecDecoder dec;
  auto out = dec.on_parity(1, members({10, 11, 12}), have_all_except({11}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 11u);
  EXPECT_EQ(dec.recovered(), 1u);
  EXPECT_EQ(dec.held_groups(), 0u);
}

TEST(FecDecoderTest, SettledGroupIsDiscarded) {
  fec::FecDecoder dec;
  auto out = dec.on_parity(1, members({10, 11}), have_all_except({}));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dec.held_groups(), 0u);
  EXPECT_EQ(dec.recovered(), 0u);
}

TEST(FecDecoderTest, HoldsThenRecoversOnLateArrival) {
  fec::FecDecoder dec;
  // Two members missing: XOR cannot reconstruct yet.
  auto out = dec.on_parity(7, members({20, 21, 22}), have_all_except({20, 22}));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dec.held_groups(), 1u);
  // Seq 20 arrives late (reordering): 22 becomes the lone missing member.
  out = dec.on_data(20, have_all_except({22}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 22u);
  EXPECT_EQ(dec.held_groups(), 0u);
}

TEST(FecDecoderTest, PruneDropsGroupsBelowCumulative) {
  fec::FecDecoder dec;
  dec.on_parity(1, members({5, 6}), have_all_except({5, 6}));
  dec.on_parity(2, members({30, 31}), have_all_except({30, 31}));
  EXPECT_EQ(dec.held_groups(), 2u);
  dec.prune_below(20);
  EXPECT_EQ(dec.held_groups(), 1u);
}

// ---------------------------------------------------- redundancy control --

rudp::EpochReport epoch_with_loss(double ratio) {
  rudp::EpochReport r;
  r.loss_ratio = ratio;
  return r;
}

TEST(RedundancyControllerTest, StartsAtCheapestProtection) {
  fec::AdaptiveRedundancyController ctrl;
  EXPECT_EQ(ctrl.group_size(), 16);
  EXPECT_NEAR(ctrl.redundancy(), 1.0 / 16.0, 1e-12);
}

TEST(RedundancyControllerTest, TightensUnderLossAndDecaysWhenQuiet) {
  fec::AdaptiveRedundancyController ctrl;
  for (int i = 0; i < 20; ++i) ctrl.on_epoch(epoch_with_loss(0.10));
  // smoothed → 0.10, target = 0.30 ⇒ k = round(1/0.3) = 3.
  EXPECT_EQ(ctrl.group_size(), 3);
  EXPECT_GE(ctrl.retunes(), 1u);
  for (int i = 0; i < 60; ++i) ctrl.on_epoch(epoch_with_loss(0.0));
  EXPECT_EQ(ctrl.group_size(), 16);  // quiet network decays to min parity
}

TEST(RedundancyControllerTest, HeavyLossClampsAtMaxRedundancy) {
  fec::AdaptiveRedundancyController ctrl;
  for (int i = 0; i < 40; ++i) ctrl.on_epoch(epoch_with_loss(0.5));
  // target clamps at max_redundancy = 0.5 ⇒ k = 2 (the configured floor).
  EXPECT_EQ(ctrl.group_size(), 2);
}

TEST(RedundancyControllerTest, RetunesCountsOnlyChanges) {
  fec::AdaptiveRedundancyController ctrl;
  for (int i = 0; i < 10; ++i) ctrl.on_epoch(epoch_with_loss(0.0));
  EXPECT_EQ(ctrl.retunes(), 0u);
  EXPECT_EQ(ctrl.epochs(), 10u);
}

// ------------------------------------------------------------ fec policy --

TEST(FecPolicyTest, HysteresisAroundThresholds) {
  echo::FecPolicy policy({.activate_above = 0.01, .deactivate_below = 0.002});
  EXPECT_FALSE(policy.active());
  EXPECT_FALSE(policy.update(0.005));  // between bands: stays off
  EXPECT_TRUE(policy.update(0.02));    // crosses activate threshold
  EXPECT_TRUE(policy.active());
  EXPECT_FALSE(policy.update(0.005));  // between bands: stays on
  EXPECT_TRUE(policy.update(0.001));   // below deactivate threshold
  EXPECT_FALSE(policy.active());
  EXPECT_EQ(policy.activations(), 1u);
}

TEST(FecPolicyTest, ProtectStampsEvents) {
  echo::FecPolicy policy({.activate_above = 0.01, .protect_tagged = false});
  echo::Event tagged{.id = 1, .bytes = 100, .tagged = true};
  echo::Event untagged{.id = 2, .bytes = 100, .tagged = false};
  policy.protect(tagged);
  EXPECT_FALSE(tagged.fec);  // inactive: nothing protected
  policy.update(0.05);
  policy.protect(tagged);
  policy.protect(untagged);
  EXPECT_FALSE(tagged.fec);  // protect_tagged = false
  EXPECT_TRUE(untagged.fec);
}

// -------------------------------------------- transport, scripted losses --

/// Wraps a SegmentWire, dropping outbound segments a predicate selects.
class FilterWire final : public rudp::SegmentWire {
 public:
  explicit FilterWire(rudp::SegmentWire& inner) : inner_(inner) {}

  void send(const Segment& seg) override {
    if (drop && drop(seg)) {
      ++dropped;
      return;
    }
    inner_.send(seg);
  }
  void set_receiver(RecvFn fn) override { inner_.set_receiver(std::move(fn)); }
  sim::Executor& executor() override { return inner_.executor(); }

  std::function<bool(const Segment&)> drop;
  int dropped = 0;

 private:
  rudp::SegmentWire& inner_;
};

struct FecPair {
  sim::Simulator sim;
  wire::DirectWirePair wires{sim, Duration::millis(15)};
  FilterWire filter{wires.a()};
  std::unique_ptr<rudp::RudpConnection> snd;
  std::unique_ptr<rudp::RudpConnection> rcv;
  std::vector<DeliveredMessage> delivered;

  explicit FecPair(rudp::RudpConfig cfg = {}, rudp::RudpConfig rcfg = {}) {
    snd = std::make_unique<rudp::RudpConnection>(filter, cfg,
                                                 rudp::Role::Client);
    rcv = std::make_unique<rudp::RudpConnection>(wires.b(), rcfg,
                                                 rudp::Role::Server);
    rcv->set_message_handler(
        [this](const DeliveredMessage& m) { delivered.push_back(m); });
    rcv->listen();
    snd->connect();
  }

  void run_ms(std::int64_t ms) {
    sim.run_until(sim.now() + Duration::millis(ms));
  }
};

TEST(FecConnectionTest, RecoversLostSegmentWithoutRetransmission) {
  rudp::RudpConfig cfg;
  cfg.fec_group_size = 4;
  cfg.initial_cwnd = 16.0;  // whole burst in flight: groups fill, not flush
  FecPair p(cfg);
  p.run_ms(100);

  // Drop exactly the 3rd DATA segment; parity must cover the hole.
  int data_seen = 0;
  p.filter.drop = [&data_seen](const Segment& s) {
    return s.type == SegmentType::Data && ++data_seen == 3;
  };
  for (int i = 0; i < 8; ++i) {
    p.snd->send_message({.bytes = 1000, .fec = true});
  }
  p.run_ms(3000);

  EXPECT_EQ(p.filter.dropped, 1);
  ASSERT_EQ(p.delivered.size(), 8u);
  for (const auto& m : p.delivered) EXPECT_TRUE(m.fec);
  EXPECT_EQ(p.rcv->stats().segments_recovered, 1u);
  EXPECT_EQ(p.rcv->stats().parities_received, 2u);
  // The whole point: the hole was healed by parity, not by retransmission.
  EXPECT_EQ(p.snd->stats().segments_retransmitted, 0u);
}

TEST(FecConnectionTest, PartialGroupIsFlushedAndProtects) {
  rudp::RudpConfig cfg;
  cfg.fec_group_size = 8;  // more than we send: only the flush closes it
  cfg.fec_flush = Duration::millis(20);
  cfg.initial_cwnd = 8.0;  // all three segments leave before the flush
  FecPair p(cfg);
  p.run_ms(100);

  int data_seen = 0;
  p.filter.drop = [&data_seen](const Segment& s) {
    return s.type == SegmentType::Data && ++data_seen == 2;
  };
  for (int i = 0; i < 3; ++i) {
    p.snd->send_message({.bytes = 800, .fec = true});
  }
  p.run_ms(3000);

  ASSERT_EQ(p.delivered.size(), 3u);
  EXPECT_EQ(p.rcv->stats().segments_recovered, 1u);
  EXPECT_EQ(p.snd->stats().segments_retransmitted, 0u);
  EXPECT_EQ(p.snd->stats().parities_sent, 1u);
}

TEST(FecConnectionTest, RtoRetransmitsWhenParityAlsoLost) {
  rudp::RudpConfig cfg;
  cfg.fec_group_size = 4;
  FecPair p(cfg);
  p.run_ms(100);

  // Lose a DATA segment *and* every parity: recovery cannot happen, so the
  // deferred fast retransmit must fall back to the RTO path.
  int data_seen = 0;
  p.filter.drop = [&data_seen](const Segment& s) {
    if (s.type == SegmentType::Parity) return true;
    return s.type == SegmentType::Data && ++data_seen == 3;
  };
  for (int i = 0; i < 8; ++i) {
    p.snd->send_message({.bytes = 1000, .fec = true});
  }
  p.run_ms(5000);

  ASSERT_EQ(p.delivered.size(), 8u);
  EXPECT_EQ(p.rcv->stats().segments_recovered, 0u);
  EXPECT_EQ(p.snd->stats().fec_deferrals, 1u);
  EXPECT_GE(p.snd->stats().segments_retransmitted, 1u);
  EXPECT_GE(p.snd->stats().timeouts, 1u);
}

TEST(FecConnectionTest, FecClassIsNeverSkippedOrDiscarded) {
  rudp::RudpConfig cfg;
  rudp::RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.9;  // receiver tolerates almost anything
  FecPair p(cfg, rcfg);
  p.run_ms(100);
  p.snd->set_discard_unmarked(true);

  for (int i = 0; i < 20; ++i) {
    auto res = p.snd->send_message({.bytes = 500, .marked = false,
                                    .fec = true});
    EXPECT_FALSE(res.discarded);
  }
  // Unmarked non-FEC traffic IS discarded under the same settings.
  bool any_discarded = false;
  for (int i = 0; i < 20; ++i) {
    any_discarded |=
        p.snd->send_message({.bytes = 500, .marked = false}).discarded;
  }
  EXPECT_TRUE(any_discarded);
  p.run_ms(3000);
  EXPECT_EQ(p.snd->stats().segments_skipped, 0u);
  // All 20 FEC messages arrive despite being unmarked.
  std::size_t fec_delivered = 0;
  for (const auto& m : p.delivered) fec_delivered += m.fec ? 1 : 0;
  EXPECT_EQ(fec_delivered, 20u);
}

// --------------------------------------------------- coordinator & cwnd ---

TEST(FecCoordinatorTest, WindowDebitKeepsBitRateShareInvariant) {
  sim::Simulator sim;
  wire::DirectWirePair wires(sim, Duration::millis(15));
  rudp::RudpConfig cfg;
  cfg.initial_cwnd = 32.0;
  rudp::RudpConnection conn(wires.a(), cfg, rudp::Role::Client);
  core::Coordinator coord(conn, {});

  const double w0 = conn.congestion().cwnd();
  // Enabling FEC at rho = 1/4 shrinks the window so cwnd·(1+rho) == w0:
  // goodput + parity stays at the pre-FEC bit-rate fair share (§3.4 logic).
  coord.on_fec_redundancy(0.25);
  EXPECT_NEAR(conn.congestion().cwnd() * 1.25, w0, 1e-9);
  EXPECT_EQ(coord.stats().fec_rescales, 1u);

  // Same ratio again: no-op.
  coord.on_fec_redundancy(0.25);
  EXPECT_EQ(coord.stats().fec_rescales, 1u);

  // Retune to rho = 1/8: invariant still holds against the original share.
  coord.on_fec_redundancy(0.125);
  EXPECT_NEAR(conn.congestion().cwnd() * 1.125, w0, 1e-9);

  // Disabling restores the full window.
  coord.on_fec_redundancy(0.0);
  EXPECT_NEAR(conn.congestion().cwnd(), w0, 1e-9);
}

TEST(FecCoordinatorTest, UncoordinatedModeLeavesWindowAlone) {
  sim::Simulator sim;
  wire::DirectWirePair wires(sim, Duration::millis(15));
  rudp::RudpConnection conn(wires.a(), {}, rudp::Role::Client);
  core::CoordinatorConfig ccfg;
  ccfg.mode = core::CoordinationMode::Uncoordinated;
  core::Coordinator coord(conn, ccfg);

  const double w0 = conn.congestion().cwnd();
  coord.on_fec_redundancy(0.25);
  EXPECT_EQ(conn.congestion().cwnd(), w0);
  EXPECT_EQ(coord.stats().fec_rescales, 0u);
  EXPECT_EQ(coord.stats().fec_redundancy, 0.25);  // still tracked
}

TEST(FecFacadeTest, EnableFecPublishesAttributesAndDebitsWindow) {
  sim::Simulator sim;
  wire::DirectWirePair wires(sim, Duration::millis(15));
  rudp::RudpConfig cfg;
  core::IqRudpConnection snd(wires.a(), cfg, rudp::Role::Client);
  core::IqRudpConnection rcv(wires.b(), cfg, rudp::Role::Server);
  rcv.listen();
  snd.connect();
  sim.run_until(sim.now() + Duration::millis(100));

  const double w0 = snd.transport().congestion().cwnd();
  snd.enable_fec();
  ASSERT_TRUE(snd.fec_enabled());
  // Controller starts at k = 16 ⇒ rho = 1/16; window debited immediately.
  EXPECT_EQ(snd.transport().fec_group_size(), 16);
  EXPECT_NEAR(snd.transport().congestion().cwnd() * (1.0 + 1.0 / 16.0), w0,
              1e-9);
  EXPECT_EQ(snd.attributes().query(attr::kFecEnabled)->as_int(), 1);
  EXPECT_EQ(snd.attributes().query(attr::kFecGroupSize)->as_int(), 16);
  EXPECT_NEAR(*snd.attributes().query_double(attr::kFecRedundancy),
              1.0 / 16.0, 1e-12);

  snd.disable_fec();
  EXPECT_FALSE(snd.fec_enabled());
  EXPECT_NEAR(snd.transport().congestion().cwnd(), w0, 1e-9);
  EXPECT_EQ(snd.attributes().query(attr::kFecEnabled)->as_int(), 0);
}

TEST(FecFacadeTest, EpochLossRetunesGroupSizeDownward) {
  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.08;
  lcfg.seed = 11;
  wire::LossyWirePair wires(sim, lcfg);
  rudp::RudpConfig cfg;
  cfg.loss_epoch_packets = 50;
  core::IqRudpConnection snd(wires.a(), cfg, rudp::Role::Client);
  core::IqRudpConnection rcv(wires.b(), cfg, rudp::Role::Server);
  rcv.listen();
  snd.connect();
  sim.run_until(sim.now() + Duration::millis(200));
  ASSERT_TRUE(snd.established());

  snd.enable_fec();
  for (int i = 0; i < 600; ++i) {
    snd.send({.bytes = 1000, .fec = true});
  }
  sim.run_until(sim.now() + Duration::seconds(30));

  // Sustained ~8% loss must have tightened the parity ratio well below the
  // starting 1/16, with the window re-debited on each retune.
  EXPECT_LT(snd.transport().fec_group_size(), 16);
  EXPECT_GE(snd.coordinator().stats().fec_rescales, 2u);
  EXPECT_EQ(snd.attributes().query(attr::kFecGroupSize)->as_int(),
            snd.transport().fec_group_size());
  EXPECT_GT(snd.transport().stats().parities_sent, 0u);
}

// ----------------------------------------------------------- end to end ---

struct E2eResult {
  std::size_t delivered = 0;
  std::size_t fec_delivered = 0;
  rudp::RudpStats snd_stats;
  rudp::RudpStats rcv_stats;
};

E2eResult run_e2e(double drop, std::uint64_t seed, bool use_fec,
                  int messages, double recv_tolerance,
                  Duration reorder_jitter = Duration::zero()) {
  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.drop_probability = drop;
  lcfg.reorder_jitter = reorder_jitter;
  lcfg.seed = seed;
  wire::LossyWirePair wires(sim, lcfg);
  rudp::RudpConfig cfg;
  cfg.fec_group_size = 4;
  rudp::RudpConfig rcfg = cfg;
  rcfg.recv_loss_tolerance = recv_tolerance;
  rudp::RudpConnection snd(wires.a(), cfg, rudp::Role::Client);
  rudp::RudpConnection rcv(wires.b(), rcfg, rudp::Role::Server);
  E2eResult out;
  rcv.set_message_handler([&out](const DeliveredMessage& m) {
    ++out.delivered;
    out.fec_delivered += m.fec ? 1 : 0;
  });
  rcv.listen();
  snd.connect();
  sim.run_until(sim.now() + Duration::millis(200));
  for (int i = 0; i < messages; ++i) {
    snd.send_message({.bytes = 1000, .marked = !use_fec ? false : true,
                      .fec = use_fec});
  }
  sim.run_until(sim.now() + Duration::seconds(60));
  out.snd_stats = snd.stats();
  out.rcv_stats = rcv.stats();
  return out;
}

TEST(FecEndToEndTest, FecFullyDeliversWhereUnmarkedShowsSkips) {
  // Same 2% lossy pipe, same seed. The unmarked leg (tolerance 0.2) loses
  // messages to skips; the FEC leg delivers everything, recovering losses
  // from parity without a single DATA retransmission.
  const double kDrop = 0.02;
  const std::uint64_t kSeed = 7;
  const int kMessages = 300;

  auto unmarked = run_e2e(kDrop, kSeed, /*use_fec=*/false, kMessages, 0.2);
  EXPECT_GT(unmarked.rcv_stats.messages_dropped, 0u);
  EXPECT_LT(unmarked.delivered, static_cast<std::size_t>(kMessages));

  auto fec = run_e2e(kDrop, kSeed, /*use_fec=*/true, kMessages, 0.2);
  EXPECT_EQ(fec.delivered, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(fec.fec_delivered, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(fec.rcv_stats.messages_dropped, 0u);
  EXPECT_GT(fec.rcv_stats.segments_recovered, 0u);
  // Acceptance criterion: recovered losses were NOT retransmitted.
  EXPECT_EQ(fec.snd_stats.segments_retransmitted, 0u);
  EXPECT_GT(fec.snd_stats.parities_sent, 0u);
}

TEST(FecEndToEndTest, SurvivesLossWithReordering) {
  auto fec = run_e2e(0.02, 21, /*use_fec=*/true, 200, 0.0,
                     /*reorder_jitter=*/Duration::millis(5));
  EXPECT_EQ(fec.delivered, 200u);
  EXPECT_GT(fec.rcv_stats.segments_recovered, 0u);
}

}  // namespace
}  // namespace iq
