// Robustness tests: the codec against arbitrary bytes (fuzz-style), and
// controller smoothness properties under identical loss patterns.

#include <gtest/gtest.h>

#include <vector>

#include "iq/common/rng.hpp"
#include "iq/rudp/codec.hpp"
#include "iq/rudp/congestion.hpp"
#include "iq/stats/running_stats.hpp"

namespace iq::rudp {
namespace {

// ----------------------------------------------------------- codec fuzz ---

class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 200));
    Bytes garbage(len);
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    // Must return nullopt or a structurally valid segment — never crash.
    auto decoded = decode_segment(garbage);
    if (decoded.has_value()) {
      const Segment& s = decoded->segment;
      // Bounds come from the enum itself — adding a segment type must not
      // silently invalidate this fuzz oracle (it once asserted <= 7 while
      // Parity = 8 existed).
      EXPECT_GE(static_cast<int>(s.type), static_cast<int>(kSegmentTypeMin));
      EXPECT_LE(static_cast<int>(s.type), static_cast<int>(kSegmentTypeMax));
      if (s.type == SegmentType::Data) {
        EXPECT_LT(s.frag_index, s.frag_count);
      }
    }
  }
}

// Regression: every declared segment type — including the highest one
// (Parity = 8, which the old hardcoded [1,7] fuzz bound excluded) — must
// round-trip through the codec.
TEST(CodecTypeRangeTest, EveryDeclaredTypeRoundTrips) {
  for (int t = static_cast<int>(kSegmentTypeMin);
       t <= static_cast<int>(kSegmentTypeMax); ++t) {
    Segment seg;
    seg.type = static_cast<SegmentType>(t);
    seg.seq = 100 + static_cast<Seq>(t);
    if (seg.type == SegmentType::Data || seg.type == SegmentType::Parity) {
      seg.msg_id = 5;
      seg.payload_bytes = 32;
    }
    const Bytes wire = encode_segment(seg);
    auto decoded = decode_segment(wire);
    ASSERT_TRUE(decoded.has_value()) << "type " << t;
    EXPECT_EQ(decoded->segment.type, seg.type) << "type " << t;
    EXPECT_EQ(decoded->segment.seq, seg.seq) << "type " << t;
  }
}

TEST_P(CodecFuzzTest, BitFlippedSegmentsNeverCrash) {
  Rng rng(GetParam() + 1000);
  Segment seg;
  seg.type = SegmentType::Data;
  seg.seq = 42;
  seg.msg_id = 7;
  seg.payload_bytes = 64;
  seg.attrs.set("k", 1.5);
  const Bytes clean = encode_segment(seg);

  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = clean;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, mutated.size() - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
    }
    auto decoded = decode_segment(mutated);  // may or may not parse
    (void)decoded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest, ::testing::Values(1u, 2u, 3u),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// --------------------------------------------------- window smoothness ----
//
// Feed LDA and AIMD the identical loss pattern; the paper's premise is
// that LDA's loss-proportional decrease keeps the window trajectory
// smoother (smaller relative variation) than AIMD's halving.

TEST(ControllerSmoothnessTest, LdaSmootherThanAimdOnSameLossPattern) {
  LdaConfig lcfg;
  lcfg.initial_cwnd = 30;
  LdaController lda(lcfg);
  AimdConfig acfg;
  acfg.initial_cwnd = 30;
  acfg.initial_ssthresh = 30;  // start in congestion avoidance
  AimdController aimd(acfg);
  lda.set_srtt(Duration::millis(30));
  aimd.set_srtt(Duration::millis(30));

  Rng rng(17);
  stats::RunningStats lda_w, aimd_w;
  TimePoint now;
  for (int epoch = 0; epoch < 400; ++epoch) {
    // ~1 window of acks per epoch.
    for (int ack = 0; ack < 30; ++ack) {
      lda.on_ack(1, now);
      aimd.on_ack(1, now);
      now += Duration::millis(1);
    }
    const double loss_ratio = rng.chance(0.3) ? rng.uniform(0.02, 0.15) : 0.0;
    if (loss_ratio > 0) {
      lda.on_epoch(loss_ratio, now);
      aimd.on_loss(now);  // AIMD reacts per loss event: halve
    } else {
      lda.on_epoch(0.0, now);
    }
    now += Duration::millis(30);
    lda_w.add(lda.cwnd());
    aimd_w.add(aimd.cwnd());
  }

  const double lda_cv = lda_w.stddev() / lda_w.mean();
  const double aimd_cv = aimd_w.stddev() / aimd_w.mean();
  EXPECT_LT(lda_cv, aimd_cv)
      << "LDA cv=" << lda_cv << " vs AIMD cv=" << aimd_cv;
}

TEST(ControllerSmoothnessTest, BothRecoverAfterLossStops) {
  LdaController lda(LdaConfig{.initial_cwnd = 20});
  AimdController aimd(AimdConfig{.initial_cwnd = 20, .initial_ssthresh = 20});
  TimePoint now;
  // Sustained loss...
  for (int i = 0; i < 20; ++i) {
    lda.on_epoch(0.2, now);
    aimd.on_loss(now);
    now += Duration::seconds(1);
  }
  const double lda_low = lda.cwnd();
  const double aimd_low = aimd.cwnd();
  // ...then a loss-free stretch: both must grow back.
  for (int i = 0; i < 2000; ++i) {
    lda.on_ack(1, now);
    aimd.on_ack(1, now);
    now += Duration::millis(1);
  }
  EXPECT_GT(lda.cwnd(), lda_low * 1.2);
  EXPECT_GT(aimd.cwnd(), aimd_low * 1.2);
}

}  // namespace
}  // namespace iq::rudp
