// Tests for DemuxWire: several independent RUDP connections over one
// shared wire pair.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/demux_wire.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq::wire {
namespace {

struct DemuxRig {
  sim::Simulator sim;
  std::unique_ptr<DirectWirePair> direct;
  std::unique_ptr<LossyWirePair> lossy;
  std::unique_ptr<DemuxWire> demux_a;
  std::unique_ptr<DemuxWire> demux_b;

  struct Conn {
    std::unique_ptr<rudp::RudpConnection> snd;
    std::unique_ptr<rudp::RudpConnection> rcv;
    std::vector<rudp::DeliveredMessage> delivered;
  };
  std::vector<std::unique_ptr<Conn>> conns;

  explicit DemuxRig(std::size_t n, double drop = 0.0) {
    if (drop > 0) {
      LossyConfig lcfg;
      lcfg.drop_probability = drop;
      lcfg.seed = 5;
      lossy = std::make_unique<LossyWirePair>(sim, lcfg);
      demux_a = std::make_unique<DemuxWire>(lossy->a());
      demux_b = std::make_unique<DemuxWire>(lossy->b());
    } else {
      direct = std::make_unique<DirectWirePair>(sim, Duration::millis(10));
      demux_a = std::make_unique<DemuxWire>(direct->a());
      demux_b = std::make_unique<DemuxWire>(direct->b());
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto c = std::make_unique<Conn>();
      rudp::RudpConfig cfg;
      cfg.conn_id = static_cast<std::uint32_t>(i + 1);
      c->snd = std::make_unique<rudp::RudpConnection>(
          demux_a->lane(cfg.conn_id), cfg, rudp::Role::Client);
      c->rcv = std::make_unique<rudp::RudpConnection>(
          demux_b->lane(cfg.conn_id), cfg, rudp::Role::Server);
      Conn* cp = c.get();
      c->rcv->set_message_handler([cp](const rudp::DeliveredMessage& m) {
        cp->delivered.push_back(m);
      });
      c->rcv->listen();
      c->snd->connect();
      conns.push_back(std::move(c));
    }
    sim.run_until(TimePoint::zero() + Duration::seconds(2));
  }
};

TEST(DemuxWireTest, ThreeConnectionsEstablishIndependently) {
  DemuxRig rig(3);
  for (const auto& c : rig.conns) {
    EXPECT_TRUE(c->snd->established());
    EXPECT_TRUE(c->rcv->established());
  }
  EXPECT_EQ(rig.demux_b->lanes(), 3u);
}

TEST(DemuxWireTest, TrafficRoutedToOwningConnection) {
  DemuxRig rig(3);
  rig.conns[0]->snd->send_message({.bytes = 100});
  rig.conns[2]->snd->send_message({.bytes = 300});
  rig.sim.run_until(rig.sim.now() + Duration::seconds(2));
  EXPECT_EQ(rig.conns[0]->delivered.size(), 1u);
  EXPECT_TRUE(rig.conns[1]->delivered.empty());
  EXPECT_EQ(rig.conns[2]->delivered.size(), 1u);
  EXPECT_EQ(rig.conns[0]->delivered[0].bytes, 100);
  EXPECT_EQ(rig.conns[2]->delivered[0].bytes, 300);
  EXPECT_EQ(rig.demux_b->unrouted(), 0u);
}

TEST(DemuxWireTest, UnknownConnIdCountsUnrouted) {
  DemuxRig rig(1);
  rudp::Segment stray;
  stray.type = rudp::SegmentType::Data;
  stray.conn_id = 99;  // no lane
  stray.payload_bytes = 10;
  rig.direct->a().send(stray);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(1));
  EXPECT_EQ(rig.demux_b->unrouted(), 1u);
}

TEST(DemuxWireTest, LanesSurviveLoss) {
  DemuxRig rig(2, /*drop=*/0.15);
  for (const auto& c : rig.conns) ASSERT_TRUE(c->snd->established());
  for (int i = 0; i < 25; ++i) {
    rig.conns[0]->snd->send_message({.bytes = 2000});
    rig.conns[1]->snd->send_message({.bytes = 3000});
  }
  rig.sim.run_until(rig.sim.now() + Duration::seconds(120));
  EXPECT_EQ(rig.conns[0]->delivered.size(), 25u);
  EXPECT_EQ(rig.conns[1]->delivered.size(), 25u);
  for (const auto& m : rig.conns[0]->delivered) EXPECT_EQ(m.bytes, 2000);
  for (const auto& m : rig.conns[1]->delivered) EXPECT_EQ(m.bytes, 3000);
}

TEST(DemuxWireTest, RemoveLaneStopsRouting) {
  DemuxRig rig(2);
  EXPECT_TRUE(rig.demux_b->remove_lane(1));
  rig.conns[0]->snd->send_message({.bytes = 100});
  rig.sim.run_until(rig.sim.now() + Duration::seconds(1));
  EXPECT_TRUE(rig.conns[0]->delivered.empty());
  EXPECT_GT(rig.demux_b->unrouted(), 0u);
  EXPECT_FALSE(rig.demux_b->remove_lane(1));
}

TEST(DemuxWireTest, LaneHandleStablePerId) {
  sim::Simulator sim;
  DirectWirePair pair(sim, Duration::millis(1));
  DemuxWire demux(pair.a());
  EXPECT_EQ(&demux.lane(7), &demux.lane(7));
  EXPECT_NE(&demux.lane(7), &demux.lane(8));
}

}  // namespace
}  // namespace iq::wire
