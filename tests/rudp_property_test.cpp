// Parameterized property tests for the RUDP engine: invariants that must
// hold across swept loss rates, reordering windows and message sizes.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"

namespace iq::rudp {
namespace {

struct RunCtx {
  sim::Simulator sim;
  std::unique_ptr<wire::LossyWirePair> wire;
  std::unique_ptr<RudpConnection> sender;
  std::unique_ptr<RudpConnection> receiver;
  std::vector<DeliveredMessage> delivered;

  RunCtx(const wire::LossyConfig& lcfg, double recv_tolerance) {
    wire = std::make_unique<wire::LossyWirePair>(sim, lcfg);
    RudpConfig scfg;
    RudpConfig rcfg;
    rcfg.recv_loss_tolerance = recv_tolerance;
    sender = std::make_unique<RudpConnection>(wire->a(), scfg, Role::Client);
    receiver = std::make_unique<RudpConnection>(wire->b(), rcfg, Role::Server);
    receiver->set_message_handler(
        [this](const DeliveredMessage& m) { delivered.push_back(m); });
    receiver->listen();
    sender->connect();
  }
};

// --------------------------------------------- reliable delivery sweep ----

class LossSweepTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(LossSweepTest, AllMarkedMessagesDeliveredInOrder) {
  const auto [loss_pct, seed] = GetParam();
  wire::LossyConfig lcfg;
  lcfg.drop_probability = loss_pct / 100.0;
  lcfg.reorder_jitter = Duration::millis(10);
  lcfg.seed = seed;
  RunCtx run(lcfg, /*recv_tolerance=*/0.0);
  run.sim.run_until(TimePoint::zero() + Duration::seconds(30));
  ASSERT_TRUE(run.sender->established());

  const int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    run.sender->send_message({.bytes = 3500});  // 3 fragments
  }
  run.sim.run_until(TimePoint::zero() + Duration::seconds(600));

  ASSERT_EQ(run.delivered.size(), static_cast<std::size_t>(kMessages))
      << "loss=" << loss_pct << "% seed=" << seed;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(run.delivered[i].msg_id, static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ(run.delivered[i].bytes, 3500);
  }
  // No skips are permitted at zero tolerance.
  EXPECT_EQ(run.sender->stats().messages_skipped, 0u);
  EXPECT_EQ(run.receiver->stats().messages_dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LossRates, LossSweepTest,
    ::testing::Combine(::testing::Values(0, 5, 10, 20, 30, 40),
                       ::testing::Values(1u, 99u)),
    [](const auto& param_info) {
      return "loss" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// ----------------------------------------- tolerance accounting sweep -----

class ToleranceSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ToleranceSweepTest, EveryMessageAccountedAndBudgetRespected) {
  const double tolerance = GetParam() / 100.0;
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.25;
  lcfg.seed = 7;
  RunCtx run(lcfg, tolerance);
  run.sim.run_until(TimePoint::zero() + Duration::seconds(30));
  ASSERT_TRUE(run.sender->established());

  const int kMessages = 80;
  for (int i = 0; i < kMessages; ++i) {
    run.sender->send_message({.bytes = 1400, .marked = (i % 4 == 0)});
  }
  run.sim.run_until(TimePoint::zero() + Duration::seconds(900));

  // Conservation: delivered + dropped == offered.
  EXPECT_EQ(run.delivered.size() + run.receiver->stats().messages_dropped,
            static_cast<std::size_t>(kMessages));
  // The sender never exceeds the advertised tolerance.
  EXPECT_LE(run.sender->skip_budget().skipped_fraction(), tolerance + 1e-9);
  // Marked messages always arrive.
  int marked_delivered = 0;
  for (const auto& m : run.delivered) {
    if (m.marked) ++marked_delivered;
  }
  EXPECT_EQ(marked_delivered, kMessages / 4);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceSweepTest,
                         ::testing::Values(0, 10, 25, 50, 100),
                         [](const auto& param_info) {
                           return "tol" + std::to_string(param_info.param);
                         });

// ------------------------------------------------- message size sweep -----

class SizeSweepTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SizeSweepTest, SizesPreservedExactly) {
  const std::int64_t size = GetParam();
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.05;
  lcfg.seed = 123;
  RunCtx run(lcfg, 0.0);
  run.sim.run_until(TimePoint::zero() + Duration::seconds(10));

  for (int i = 0; i < 10; ++i) run.sender->send_message({.bytes = size});
  run.sim.run_until(TimePoint::zero() + Duration::seconds(600));

  ASSERT_EQ(run.delivered.size(), 10u) << "size=" << size;
  for (const auto& m : run.delivered) EXPECT_EQ(m.bytes, size);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweepTest,
                         ::testing::Values(0, 1, 1399, 1400, 1401, 2800, 4201,
                                           50'000, 180'000),
                         [](const auto& param_info) {
                           return "b" + std::to_string(param_info.param);
                         });

// --------------------------------------------------- cwnd invariants ------

class CwndInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(CwndInvariantTest, WindowStaysWithinBounds) {
  wire::LossyConfig lcfg;
  lcfg.drop_probability = GetParam() / 100.0;
  lcfg.seed = 5;
  RunCtx run(lcfg, 0.0);
  run.sim.run_until(TimePoint::zero() + Duration::seconds(20));

  for (int i = 0; i < 200; ++i) run.sender->send_message({.bytes = 1400});
  // Sample the window as the run progresses.
  for (int step = 0; step < 200; ++step) {
    run.sim.run_until(run.sim.now() + Duration::millis(100));
    const double w = run.sender->congestion().cwnd();
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 4096.0);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, CwndInvariantTest,
                         ::testing::Values(0, 10, 30),
                         [](const auto& param_info) {
                           return "loss" + std::to_string(param_info.param);
                         });

// --------------------------------------------------- determinism ----------

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [] {
    wire::LossyConfig lcfg;
    lcfg.drop_probability = 0.15;
    lcfg.seed = 42;
    RunCtx run(lcfg, 0.3);
    run.sim.run_until(TimePoint::zero() + Duration::seconds(5));
    for (int i = 0; i < 50; ++i) {
      run.sender->send_message({.bytes = 2000, .marked = (i % 3 == 0)});
    }
    run.sim.run_until(TimePoint::zero() + Duration::seconds(300));
    std::vector<std::pair<std::uint32_t, std::int64_t>> trace;
    for (const auto& m : run.delivered) {
      trace.emplace_back(m.msg_id, m.delivered.ns());
    }
    return std::make_tuple(trace, run.sender->stats().segments_sent,
                           run.sender->stats().segments_retransmitted);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace iq::rudp
