// Tests for ChannelMux: per-channel routing, shared reliability semantics,
// unrouted accounting, channel-attribute hygiene.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "iq/echo/mux.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq::echo {
namespace {

struct MuxRig {
  sim::Simulator sim;
  std::unique_ptr<wire::DirectWirePair> direct;
  std::unique_ptr<wire::LossyWirePair> lossy;
  std::unique_ptr<core::IqRudpConnection> snd;
  std::unique_ptr<core::IqRudpConnection> rcv;
  std::unique_ptr<ChannelMux> mux_s;
  std::unique_ptr<ChannelMux> mux_r;

  explicit MuxRig(double tolerance = 0.0, double drop = 0.0) {
    rudp::RudpConfig cfg;
    rudp::RudpConfig rcfg;
    rcfg.recv_loss_tolerance = tolerance;
    if (drop > 0) {
      wire::LossyConfig lcfg;
      lcfg.drop_probability = drop;
      lcfg.seed = 9;
      lossy = std::make_unique<wire::LossyWirePair>(sim, lcfg);
      snd = std::make_unique<core::IqRudpConnection>(lossy->a(), cfg,
                                                     rudp::Role::Client);
      rcv = std::make_unique<core::IqRudpConnection>(lossy->b(), rcfg,
                                                     rudp::Role::Server);
    } else {
      direct =
          std::make_unique<wire::DirectWirePair>(sim, Duration::millis(10));
      snd = std::make_unique<core::IqRudpConnection>(direct->a(), cfg,
                                                     rudp::Role::Client);
      rcv = std::make_unique<core::IqRudpConnection>(direct->b(), rcfg,
                                                     rudp::Role::Server);
    }
    mux_s = std::make_unique<ChannelMux>(*snd);
    mux_r = std::make_unique<ChannelMux>(*rcv);
    rcv->listen();
    snd->connect();
    sim.run_until(TimePoint::zero() + Duration::seconds(2));
  }

  void run_s(double s) { sim.run_until(sim.now() + Duration::from_seconds(s)); }
};

TEST(ChannelMuxTest, RoutesByChannelName) {
  MuxRig rig;
  std::vector<std::int64_t> control, geometry;
  rig.mux_r->subscribe("control", [&](const ReceivedEvent& e) {
    control.push_back(e.event.bytes);
  });
  rig.mux_r->subscribe("geometry", [&](const ReceivedEvent& e) {
    geometry.push_back(e.event.bytes);
  });

  rig.mux_s->channel("control").submit({.bytes = 100});
  rig.mux_s->channel("geometry").submit({.bytes = 9000});
  rig.mux_s->channel("control").submit({.bytes = 120});
  rig.run_s(2);

  EXPECT_EQ(control, (std::vector<std::int64_t>{100, 120}));
  EXPECT_EQ(geometry, (std::vector<std::int64_t>{9000}));
  EXPECT_EQ(rig.mux_r->delivered_on("control"), 2u);
  EXPECT_EQ(rig.mux_r->delivered_on("geometry"), 1u);
}

TEST(ChannelMuxTest, UnsubscribedChannelCountsUnrouted) {
  MuxRig rig;
  rig.mux_s->channel("nobody-listens").submit({.bytes = 10});
  rig.run_s(2);
  EXPECT_EQ(rig.mux_r->unrouted(), 1u);
  EXPECT_EQ(rig.mux_r->delivered(), 0u);
}

TEST(ChannelMuxTest, ChannelAttributeStrippedFromMeta) {
  MuxRig rig;
  attr::AttrList seen;
  rig.mux_r->subscribe("c", [&](const ReceivedEvent& e) { seen = e.event.meta; });
  Event ev;
  ev.bytes = 50;
  ev.meta.set("frame", std::int64_t{3});
  rig.mux_s->channel("c").submit(ev);
  rig.run_s(2);
  EXPECT_FALSE(seen.has(kChannelAttr));
  EXPECT_EQ(seen.get_int("frame"), 3);
}

TEST(ChannelMuxTest, SameHandleReturnedPerName) {
  MuxRig rig;
  EXPECT_EQ(&rig.mux_s->channel("x"), &rig.mux_s->channel("x"));
  EXPECT_NE(&rig.mux_s->channel("x"), &rig.mux_s->channel("y"));
}

TEST(ChannelMuxTest, UnsubscribeStopsDelivery) {
  MuxRig rig;
  int got = 0;
  rig.mux_r->subscribe("c", [&](const ReceivedEvent&) { ++got; });
  rig.mux_s->channel("c").submit({.bytes = 10});
  rig.run_s(2);
  EXPECT_TRUE(rig.mux_r->unsubscribe("c"));
  rig.mux_s->channel("c").submit({.bytes = 10});
  rig.run_s(2);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rig.mux_r->unrouted(), 1u);
  EXPECT_FALSE(rig.mux_r->unsubscribe("c"));
}

TEST(ChannelMuxTest, MarkedChannelSurvivesLossUnmarkedMayNot) {
  MuxRig rig(/*tolerance=*/0.6, /*drop=*/0.25);
  ASSERT_TRUE(rig.snd->established());
  int control = 0, bulk = 0;
  rig.mux_r->subscribe("control", [&](const ReceivedEvent&) { ++control; });
  rig.mux_r->subscribe("bulk", [&](const ReceivedEvent&) { ++bulk; });

  for (int i = 0; i < 40; ++i) {
    rig.mux_s->channel("control").submit({.bytes = 200, .tagged = true});
    rig.mux_s->channel("bulk").submit({.bytes = 1400, .tagged = false});
  }
  rig.run_s(120);
  EXPECT_EQ(control, 40);  // marked stream fully delivered
  EXPECT_LE(bulk, 40);     // unmarked stream may have been thinned
  // Everything is accounted: delivered + transport-level drops == offered.
  EXPECT_EQ(rig.mux_r->delivered() +
                rig.rcv->transport().stats().messages_dropped,
            80u);
}

TEST(ChannelMuxTest, InterleavedChannelsKeepPerChannelOrder) {
  MuxRig rig;
  std::vector<std::uint64_t> a_ids, b_ids;
  rig.mux_r->subscribe("a", [&](const ReceivedEvent& e) {
    a_ids.push_back(e.event.id);
  });
  rig.mux_r->subscribe("b", [&](const ReceivedEvent& e) {
    b_ids.push_back(e.event.id);
  });
  for (int i = 0; i < 20; ++i) {
    rig.mux_s->channel(i % 2 == 0 ? "a" : "b").submit({.bytes = 500});
  }
  rig.run_s(5);
  ASSERT_EQ(a_ids.size(), 10u);
  ASSERT_EQ(b_ids.size(), 10u);
  for (std::size_t i = 1; i < a_ids.size(); ++i) {
    EXPECT_GT(a_ids[i], a_ids[i - 1]);
  }
  for (std::size_t i = 1; i < b_ids.size(); ++i) {
    EXPECT_GT(b_ids[i], b_ids[i - 1]);
  }
}

}  // namespace
}  // namespace iq::echo
