// Real-socket soak: the survivable IQ-FTP workload across two processes on
// loopback, plus the steady-state allocation pin for the socket path.
//
// The soak forks a receiver process; sender and receiver talk only through
// AF_INET datagrams (no shared memory), so handshake, lossy transfer,
// terminal failure and resume all happen over the real wire. Impairment is
// the wires' userspace netem substitute (seeded rx drops + a blackout
// window) because tc-netem is unavailable in the test containers. The
// blackout is long enough for *both* endpoints to fail terminally — RTO
// streak on the sender, keepalive timeout on the receiver — and each side
// independently fails over to a fresh wire + connection generation, resume
// restarting the transfer where it left off. The receiver's exit status
// reports byte-identity: every delivered block digest must match a freshly
// generated FileImage.
//
// WireAllocTest extends the zero_alloc_test pin through the socket layer:
// after warmup, a lossy transfer over real UDP sockets must not touch the
// global heap — sendmmsg batches encode into per-slot arenas at high-water
// size, recvmmsg decodes in place from fixed slots, and the epoll loop
// dispatches without copying handlers.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>

// Replace the global allocation functions in this binary so every
// operator-new is counted (exactly one TU per binary may do this).
#define IQ_COUNT_ALLOCS
#include "../bench/bench_util.hpp"
#include "iq/ftp/iq_ftp.hpp"
#include "iq/wire/udp_wire.hpp"

namespace iq::wire {
namespace {

// Distinct from udp_wire_test's 39200+ range so the suites can share a host.
constexpr int kSoakPortBase = 40100;
constexpr int kAllocPortBase = 40180;
constexpr std::uint64_t kContentSeed = 424'242;

double elapsed_s_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ------------------------------------------------------------------ soak --

ftp::FileSpec soak_file() {
  ftp::FileSpec spec;
  spec.total_bytes = 4 * 1024 * 1024;  // 256 blocks of 16 KiB
  return spec;
}

rudp::RudpConfig soak_rudp(bool receiver_side, int generation) {
  rudp::RudpConfig rc;
  // Generation-scoped conn id: a stray datagram from a dead generation is
  // rejected even if it somehow reaches the new sockets.
  rc.conn_id = static_cast<std::uint32_t>(100 + generation);
  rc.rtt.min_rto = Duration::millis(50);
  rc.max_rto_streak = 3;  // sender detects the blackout in ~350 ms
  rc.connect_retry = Duration::millis(100);
  rc.connect_retry_cap = Duration::millis(200);
  rc.max_connect_attempts = 50;  // rides out failover skew between processes
  if (receiver_side) {
    rc.keepalive = Duration::millis(100);
    rc.max_keepalive_misses = 4;  // receiver detects it in ~500 ms
  }
  return rc;
}

/// One endpoint of the soak: the current wire + connection generation and
/// the transfer endpoint that survives across generations.
struct SoakEndpoint {
  RealtimeLoop loop;
  bool is_sender = false;
  UdpWireConfig wire_cfg;
  int generation = 0;
  int failures = 0;
  bool failover_pending = false;
  std::unique_ptr<UdpWire> wire, old_wire;
  std::unique_ptr<core::IqRudpConnection> conn, old_conn;
  std::unique_ptr<ftp::IqFtpSender> sender;
  std::unique_ptr<ftp::IqFtpReceiver> receiver;
};

void open_generation(SoakEndpoint& e, bool resuming);

void schedule_failover(SoakEndpoint& e) {
  if (e.failover_pending) return;
  e.failover_pending = true;
  ++e.failures;
  if (e.sender) e.sender->stop();  // attach() must not race a live refill
  // Deferred: the observer fires from inside the failing connection, which
  // must not be destroyed under its own feet.
  e.loop.schedule_after(Duration::millis(100), [&e] {
    e.failover_pending = false;
    ++e.generation;
    open_generation(e, /*resuming=*/true);
  });
}

/// Build wire + connection generation `e.generation` and hand the transfer
/// endpoint to it (the two processes derive the same per-generation port
/// pair independently).
void open_generation(SoakEndpoint& e, bool resuming) {
  const auto port = [&](bool sender_side) {
    return static_cast<std::uint16_t>(kSoakPortBase + 2 * e.generation +
                                      (sender_side ? 0 : 1));
  };
  auto wire = std::make_unique<UdpWire>(e.loop, port(e.is_sender),
                                        port(!e.is_sender), e.wire_cfg);
  auto conn = std::make_unique<core::IqRudpConnection>(
      *wire, soak_rudp(!e.is_sender, e.generation),
      e.is_sender ? rudp::Role::Client : rudp::Role::Server);
  if (resuming) {
    // The old connection is still alive here: the receiver folds its drop
    // counter into the completion bookkeeping.
    if (e.sender) e.sender->attach(*conn);
    if (e.receiver) e.receiver->attach(*conn);
  }
  // Retire the previous generation (connections reference their wires, so
  // connection first), then shift the current one into the old slots.
  e.old_conn.reset();
  e.old_wire.reset();
  e.old_conn = std::move(e.conn);
  e.old_wire = std::move(e.wire);
  e.conn = std::move(conn);
  e.wire = std::move(wire);

  e.conn->set_error_observer(
      [&e](rudp::FailureReason) { schedule_failover(e); });
  if (e.is_sender) {
    e.conn->set_established_handler([&e] { e.sender->start(); });
    e.conn->connect();
  } else {
    e.conn->listen();
  }
}

/// Child process: receive the file, trigger the blackout mid-transfer,
/// survive the terminal failure, verify byte-identity. Exit codes:
/// 0 success, 2 timeout, 3 digest mismatch, 4 no failover happened.
int run_receiver_process() {
  SoakEndpoint e;
  e.is_sender = false;
  e.wire_cfg.rx_drop = 0.03;  // lossy link throughout
  e.wire_cfg.impairment_seed = 11;
  open_generation(e, /*resuming=*/false);
  const ftp::FileImage image(soak_file(), kContentSeed);
  e.receiver = std::make_unique<ftp::IqFtpReceiver>(*e.conn);

  bool blacked = false;
  TimePoint blackout_off;
  const auto t0 = std::chrono::steady_clock::now();
  while (!e.receiver->complete()) {
    if (elapsed_s_since(t0) > 25.0) return 2;
    e.loop.poll_once(Duration::millis(5));
    // Mid-transfer blackout at this endpoint: inbound data and outbound
    // acks/keepalives all die, so both processes observe a dead path.
    if (!blacked && e.generation == 0 &&
        e.receiver->report().blocks_received >= 16) {
      blacked = true;
      e.wire->set_blackout(true);
      blackout_off = e.loop.now() + Duration::millis(1200);
    }
    // The off-switch only matters if failover never happens (the old wire
    // dies with its generation); guarded so it never touches a dead wire.
    if (blacked && e.generation == 0 && e.loop.now() >= blackout_off) {
      e.wire->set_blackout(false);
    }
  }
  if (e.failures < 1) return 4;
  if (!e.receiver->matches(image)) return 3;
  return 0;
}

/// Parent-side sender: stream the file, fail over through the blackout,
/// resume, finish. Returns 0 on success, 2 on timeout.
int run_sender_process(SoakEndpoint& e) {
  e.is_sender = true;
  e.wire_cfg.rx_drop = 0.03;  // acks get dropped too
  e.wire_cfg.impairment_seed = 13;
  open_generation(e, /*resuming=*/false);
  const ftp::FileImage image(soak_file(), kContentSeed);
  e.sender = std::make_unique<ftp::IqFtpSender>(
      *e.conn, soak_file(), [](std::uint64_t) { return true; }, &image);

  const auto t0 = std::chrono::steady_clock::now();
  while (!(e.sender->done() && e.sender->resumes() >= 1)) {
    if (elapsed_s_since(t0) > 25.0) return 2;
    e.loop.poll_once(Duration::millis(5));
  }
  // done() means every block is acked; linger so the final ack exchange and
  // the receiver's completion poll finish before the sockets go away.
  e.loop.run_for(Duration::millis(300));
  return 0;
}

TEST(WireSoakTest, TwoProcessLossyTransferSurvivesTerminalFailure) {
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // gtest must not unwind in the child: report through the exit status.
    ::_exit(run_receiver_process());
  }
  SoakEndpoint snd;
  const int rc = run_sender_process(snd);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_EQ(rc, 0) << "sender timed out";
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "receiver exit code " << WEXITSTATUS(status)
      << " (2=timeout, 3=digest mismatch, 4=no failover)";

  // The soak exercised what it claims: a terminal failure, one resume, and
  // batched I/O on the post-resume wire.
  EXPECT_EQ(snd.failures, 1);
  EXPECT_EQ(snd.sender->resumes(), 1u);
  EXPECT_EQ(snd.generation, 1);
  EXPECT_GT(snd.wire->stats().max_send_batch, 1u);
  EXPECT_EQ(snd.wire->stats().decode_failures, 0u);
}

// ------------------------------------------------------------- alloc pin --

/// zero_alloc_test's Transfer, rebuilt over real sockets: RealtimeLoop
/// instead of Simulator, UdpWire instead of LossyWirePair, kernel loopback
/// instead of a simulated link.
struct WireTransfer {
  RealtimeLoop loop;
  UdpWire a, b;
  rudp::RudpConnection snd, rcv;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t target = 0;

  static UdpWireConfig impaired(double rx_drop, std::uint64_t seed) {
    UdpWireConfig cfg;
    cfg.rx_drop = rx_drop;
    cfg.impairment_seed = seed;
    return cfg;
  }

  static rudp::RudpConfig rudp_config() {
    rudp::RudpConfig cfg;
    // Cap eacks at the Segment::EackList inline capacity so ACK assembly
    // never spills (the default 64 heap-allocates by design).
    cfg.max_eacks_per_ack = 16;
    cfg.rtt.min_rto = Duration::millis(20);
    cfg.max_rto_streak = 0;  // the warmup blackout must not be terminal
    return cfg;
  }

  WireTransfer()
      : a(loop, kAllocPortBase, kAllocPortBase + 1, impaired(0.01, 5)),
        b(loop, kAllocPortBase + 1, kAllocPortBase, impaired(0.02, 6)),
        snd(a, rudp_config(), rudp::Role::Client),
        rcv(b, rudp_config(), rudp::Role::Server) {
    rcv.set_message_handler(
        [this](const rudp::DeliveredMessage&) { ++delivered; });
    rcv.listen();
    snd.connect();
  }

  // Self-rescheduling pacer, trivially copyable so the scheduler stores it
  // inline: the harness itself must not allocate in the measured phase.
  // Paced bursts keep the socket buffers comfortable — kernel drops are
  // recovered by retransmission, but an EWOULDBLOCK storm would log.
  struct Pace {
    WireTransfer* t;
    void operator()() const {
      for (int i = 0; i < 4 && t->sent < t->target; ++i) {
        ++t->sent;
        t->snd.send_message({.bytes = 1000, .marked = true});
      }
      if (t->sent < t->target)
        t->loop.schedule_after(Duration::micros(500), Pace{t});
    }
  };

  /// Send `n` more paced messages and run until they are all delivered.
  /// Drives poll_once directly: run_until's std::function may allocate.
  void send_and_drain(std::uint64_t n) {
    target += n;
    loop.schedule_after(Duration::micros(500), Pace{this});
    const auto t0 = std::chrono::steady_clock::now();
    while (delivered < target && elapsed_s_since(t0) < 30.0) {
      loop.poll_once(Duration::millis(1));
    }
  }
};

TEST(WireAllocTest, SteadyStateSocketPathDoesNotAllocate) {
  if (std::getenv("IQ_AUDIT") != nullptr) {
    GTEST_SKIP() << "IQ_AUDIT arms the flight recorder on every connection; "
                    "its event bookkeeping allocates by design, so the "
                    "zero-allocation pin only holds for the production path";
  }
  WireTransfer t;

  // Warmup: handshake, arena/pool growth to high water, kernel and
  // impairment losses, retransmissions — plus a blackout episode so the
  // RTO backoff chain and the worst-case reorder backlog are reached while
  // allocation is still allowed (deeper than anything the measured phase
  // hits).
  t.loop.schedule_after(Duration::millis(200),
                        [&t] { t.b.set_blackout(true); });
  t.loop.schedule_after(Duration::millis(350),
                        [&t] { t.b.set_blackout(false); });
  t.send_and_drain(3000);
  ASSERT_TRUE(t.snd.established());
  ASSERT_EQ(t.delivered, 3000u);

  // Measured phase: 3000 more messages through the same lossy sockets.
  // Kernel scheduling makes the loss/reorder pattern nondeterministic, so a
  // rare first-visit to a deeper high-water state (one-time capacity
  // growth) can land in the measured phase instead of the warmup. One
  // retry separates that from a real steady-state leak: growth is
  // absorbed and the re-measure reads zero, a leak repeats every phase.
  std::uint64_t allocs = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t before = iq::bench::alloc_count();
    t.send_and_drain(3000);
    allocs = iq::bench::alloc_count() - before;
    ASSERT_EQ(t.delivered, t.sent);
    if (allocs == 0) break;
  }
  EXPECT_EQ(allocs, 0u) << "steady-state socket transfer touched the heap "
                        << allocs << " times in consecutive phases";
  // The pin covered the batched path, not a degenerate one-datagram case.
  EXPECT_GT(t.a.stats().max_send_batch, 1u);
  EXPECT_GT(t.b.stats().max_recv_batch, 1u);
  EXPECT_EQ(t.a.stats().sends_dropped, 0u);
}

}  // namespace
}  // namespace iq::wire
