// City-scale fan-out scenario: bit-identical results at every shard count
// (the ShardedSim determinism contract carried through the full protocol
// stack), plus sanity on the aggregate metrics.
//
// Scaled down from the 10k-flow bench configuration so the matrix stays
// fast; bench/bench_cityscale.cpp and ci.sh --scale run the full size.

#include <gtest/gtest.h>

#include "iq/harness/cityscale.hpp"

namespace iq::harness {
namespace {

CityScaleConfig small_cfg() {
  CityScaleConfig cfg;
  cfg.sites = 6;
  cfg.subs_per_site = 8;
  cfg.sim_time = Duration::seconds(3);
  cfg.drain_time = Duration::seconds(1);
  return cfg;
}

TEST(CityScaleTest, TrafficFlowsEndToEnd) {
  CityScaleConfig cfg = small_cfg();
  const CityScaleResult r = run_cityscale(cfg);
  EXPECT_EQ(r.flows, 48u);
  EXPECT_GT(r.frames_published, 0u);
  EXPECT_GT(r.fanout_forwarded, 0u);
  EXPECT_GT(r.fanout_delivered, 0u);
  EXPECT_GT(r.joins, 0u);
  EXPECT_GT(r.delivery_ratio, 0.5);
  EXPECT_GT(r.jain_utilization, 0.0);
  EXPECT_LE(r.jain_utilization, 1.0 + 1e-9);
  EXPECT_GT(r.parcels_delivered, 0u);  // trunk traffic crossed the mailbox
  EXPECT_NE(r.digest, 0u);
}

TEST(CityScaleTest, BitIdenticalAcrossShardCounts) {
  CityScaleConfig cfg = small_cfg();
  cfg.shards = 1;
  const CityScaleResult base = run_cityscale(cfg);
  for (const std::size_t shards : {2u, 4u, 7u}) {
    cfg.shards = shards;
    const CityScaleResult r = run_cityscale(cfg);
    EXPECT_EQ(r.digest, base.digest) << "shards=" << shards;
    EXPECT_EQ(r.events_executed, base.events_executed) << "shards=" << shards;
    EXPECT_EQ(r.parcels_delivered, base.parcels_delivered)
        << "shards=" << shards;
    EXPECT_EQ(r.fanout_delivered, base.fanout_delivered)
        << "shards=" << shards;
  }
}

TEST(CityScaleTest, ThreadedMatchesInline) {
  CityScaleConfig cfg = small_cfg();
  cfg.shards = 1;
  const CityScaleResult base = run_cityscale(cfg);
  cfg.shards = 4;
  cfg.threaded = true;
  const CityScaleResult r = run_cityscale(cfg);
  EXPECT_EQ(r.digest, base.digest);
  EXPECT_EQ(r.events_executed, base.events_executed);
}

TEST(CityScaleTest, UncoordinatedModeIsDeterministicToo) {
  CityScaleConfig cfg = small_cfg();
  cfg.mode = core::CoordinationMode::Uncoordinated;
  cfg.shards = 1;
  const CityScaleResult base = run_cityscale(cfg);
  cfg.shards = 3;
  const CityScaleResult r = run_cityscale(cfg);
  EXPECT_EQ(r.digest, base.digest);
  EXPECT_GT(r.fanout_delivered, 0u);
}

TEST(CityScaleTest, CongestionManagerVariantIsDeterministic) {
  CityScaleConfig cfg = small_cfg();
  cfg.attach_cm = true;
  cfg.shards = 1;
  const CityScaleResult base = run_cityscale(cfg);
  EXPECT_GT(base.fanout_delivered, 0u);
  cfg.shards = 4;
  cfg.threaded = true;
  const CityScaleResult r = run_cityscale(cfg);
  EXPECT_EQ(r.digest, base.digest);
}

TEST(CityScaleTest, OverloadedAdaptationPathIsDeterministic) {
  // Push the slow access links past saturation so losses trigger the
  // error-ratio callbacks and resolution policies actually shrink — the
  // adaptation path must be just as shard-count-invariant as the happy one.
  CityScaleConfig cfg = small_cfg();
  cfg.sim_time = Duration::seconds(4);
  cfg.publisher_fps = 30.0;
  cfg.bytes_per_member = 600;
  cfg.shards = 1;
  const CityScaleResult base = run_cityscale(cfg);
  EXPECT_LT(base.mean_scale, 1.0);  // somebody shrank
  EXPECT_LT(base.delivery_ratio, 1.0);
  cfg.shards = 3;
  const CityScaleResult r = run_cityscale(cfg);
  EXPECT_EQ(r.digest, base.digest);
  cfg.shards = 3;
  cfg.threaded = true;
  const CityScaleResult t = run_cityscale(cfg);
  EXPECT_EQ(t.digest, base.digest);
}

TEST(CityScaleTest, RerunIsBitIdentical) {
  // Same config twice — the scenario itself must be replay-deterministic
  // before cross-shard identity means anything.
  CityScaleConfig cfg = small_cfg();
  const CityScaleResult a = run_cityscale(cfg);
  const CityScaleResult b = run_cityscale(cfg);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

}  // namespace
}  // namespace iq::harness
