// Tests for the per-host congestion manager (docs/CM.md): the apportionment
// policy, the CongestionManager/FlowHandle shared state, the CmAuditor
// invariants, and the integration with the transport and the IQ facade.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "iq/audit/cm_auditor.hpp"
#include "iq/cm/apportion.hpp"
#include "iq/cm/manager.hpp"
#include "iq/core/iq_connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/wire.hpp"

namespace iq::cm {
namespace {

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::zero() + Duration::millis(ms);
}

// ------------------------------------------------------------ apportion ---

TEST(ApportionTest, EqualWeightsSplitEqually) {
  const std::array<double, 4> w{1.0, 1.0, 1.0, 1.0};
  std::array<double, 4> s{};
  const ApportionResult r = apportion(40.0, w, 1.0, s);
  for (double share : s) EXPECT_DOUBLE_EQ(share, 10.0);
  EXPECT_DOUBLE_EQ(r.sum, 40.0);
  EXPECT_DOUBLE_EQ(r.min_share, 10.0);
}

TEST(ApportionTest, WeightsSplitProportionallyAboveFloor) {
  const std::array<double, 2> w{2.0, 1.0};
  std::array<double, 2> s{};
  const ApportionResult r = apportion(32.0, w, 1.0, s);
  // floor 1 each, surplus 30 split 2:1 → 21 and 11.
  EXPECT_DOUBLE_EQ(s[0], 21.0);
  EXPECT_DOUBLE_EQ(s[1], 11.0);
  EXPECT_DOUBLE_EQ(r.sum, 32.0);
}

TEST(ApportionTest, FloorProtectsZeroWeightFlow) {
  const std::array<double, 2> w{1.0, 0.0};
  std::array<double, 2> s{};
  apportion(10.0, w, 1.0, s);
  EXPECT_DOUBLE_EQ(s[1], 1.0);  // floor only
  EXPECT_DOUBLE_EQ(s[0], 9.0);  // floor + all surplus
}

TEST(ApportionTest, DegeneratesToEqualSplitWhenAggregateBelowFloors) {
  // 8 flows, floor 1, aggregate 4: equal split of 0.5 each.
  const std::vector<double> w(8, 1.0);
  std::vector<double> s(8);
  const ApportionResult r = apportion(4.0, w, 1.0, s);
  for (double share : s) EXPECT_DOUBLE_EQ(share, 0.5);
  EXPECT_DOUBLE_EQ(r.min_share, 0.5);
}

TEST(ApportionTest, ZeroTotalWeightSplitsSurplusEqually) {
  const std::array<double, 2> w{0.0, 0.0};
  std::array<double, 2> s{};
  apportion(10.0, w, 1.0, s);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  EXPECT_DOUBLE_EQ(s[1], 5.0);
}

TEST(ApportionTest, NegativeWeightTreatedAsZero) {
  const std::array<double, 2> w{1.0, -3.0};
  std::array<double, 2> s{};
  apportion(10.0, w, 1.0, s);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  EXPECT_DOUBLE_EQ(s[0], 9.0);
}

TEST(ApportionTest, SumIsExactAfterDriftAbsorption) {
  // Awkward weights whose proportional shares don't sum exactly; the
  // largest share absorbs the drift and the reported sum is the true total.
  const std::array<double, 3> w{0.1, 0.3, 0.7};
  std::array<double, 3> s{};
  const ApportionResult r = apportion(17.77, w, 0.5, s);
  EXPECT_DOUBLE_EQ(r.sum, s[0] + s[1] + s[2]);
  EXPECT_NEAR(r.sum, 17.77, 1e-9);
}

TEST(ApportionTest, EmptyIsZero) {
  const ApportionResult r = apportion(10.0, {}, 1.0, {});
  EXPECT_DOUBLE_EQ(r.sum, 0.0);
}

// ----------------------------------------------------------- manager -----

CmConfig small_cm(double initial = 8.0) {
  CmConfig cfg;
  cfg.aggregate.initial_cwnd = initial;
  return cfg;
}

TEST(CongestionManagerTest, RegisterApportionsEqually) {
  CongestionManager mgr(small_cm(8.0));
  FlowHandle* a = mgr.register_flow();
  FlowHandle* b = mgr.register_flow();
  EXPECT_EQ(mgr.flow_count(), 2u);
  EXPECT_DOUBLE_EQ(a->share(), 4.0);
  EXPECT_DOUBLE_EQ(b->share(), 4.0);
  EXPECT_DOUBLE_EQ(a->cwnd(), a->share());
  mgr.unregister_flow(a);
  mgr.unregister_flow(b);
}

TEST(CongestionManagerTest, WeightsApportionProportionally) {
  CongestionManager mgr(small_cm(32.0));
  FlowHandle* a = mgr.register_flow(2.0);
  FlowHandle* b = mgr.register_flow(1.0);
  EXPECT_DOUBLE_EQ(a->share(), 21.0);
  EXPECT_DOUBLE_EQ(b->share(), 11.0);
  b->set_weight(2.0);
  EXPECT_DOUBLE_EQ(a->share(), 16.0);
  EXPECT_DOUBLE_EQ(b->share(), 16.0);
  mgr.unregister_flow(a);
  mgr.unregister_flow(b);
}

TEST(CongestionManagerTest, LeaveReturnsShareToSiblings) {
  CongestionManager mgr(small_cm(30.0));
  FlowHandle* a = mgr.register_flow();
  FlowHandle* b = mgr.register_flow();
  FlowHandle* c = mgr.register_flow();
  EXPECT_DOUBLE_EQ(a->share(), 10.0);
  int a_notified = 0;
  a->set_share_listener([&] { ++a_notified; });
  mgr.unregister_flow(b);
  EXPECT_DOUBLE_EQ(a->share(), 15.0);
  EXPECT_DOUBLE_EQ(c->share(), 15.0);
  EXPECT_EQ(a_notified, 1);  // grew → notified
  mgr.unregister_flow(a);
  mgr.unregister_flow(c);
}

TEST(CongestionManagerTest, ApportionChangesCountsStructuralOnly) {
  CongestionManager mgr(small_cm(8.0));
  FlowHandle* a = mgr.register_flow();   // structural
  FlowHandle* b = mgr.register_flow();   // structural
  a->on_ack(1, at_ms(10));               // not structural
  a->set_weight(3.0);                    // structural
  mgr.scale_aggregate(1.5);              // structural
  EXPECT_EQ(mgr.stats().apportion_changes, 4u);
  EXPECT_GE(mgr.stats().reapportions, 5u);
  mgr.unregister_flow(a);
  mgr.unregister_flow(b);
}

TEST(CongestionManagerTest, SharedAcksGrowAggregateOnce) {
  // Two flows' acks feed one macro-flow: aggregate growth matches what a
  // single flow with the same total ack stream would get.
  CongestionManager mgr(small_cm(10.0));
  FlowHandle* a = mgr.register_flow();
  FlowHandle* b = mgr.register_flow();
  const double before = mgr.aggregate_cwnd();
  a->on_ack(1, at_ms(1));
  b->on_ack(1, at_ms(2));

  rudp::LdaConfig solo_cfg;
  solo_cfg.initial_cwnd = 10.0;
  rudp::LdaController solo(solo_cfg);
  solo.on_ack(1, at_ms(1));
  solo.on_ack(1, at_ms(2));

  EXPECT_GT(mgr.aggregate_cwnd(), before);
  EXPECT_DOUBLE_EQ(mgr.aggregate_cwnd(), solo.cwnd());
  mgr.unregister_flow(a);
  mgr.unregister_flow(b);
}

TEST(CongestionManagerTest, LossDedupWithinWindow) {
  CongestionManager mgr(small_cm(10.0));
  FlowHandle* a = mgr.register_flow();
  FlowHandle* b = mgr.register_flow();
  // Simultaneous losses on both flows: one congestion event.
  a->on_timeout(at_ms(100));
  b->on_timeout(at_ms(101));
  const auto& st = mgr.stats();
  EXPECT_EQ(st.timeouts_reported, 2u);
  EXPECT_EQ(st.timeouts_penalized, 1u);
  EXPECT_EQ(st.timeouts_deduped, 1u);
  // Past the dedup window (min 10 ms, no RTT samples): a fresh event.
  b->on_timeout(at_ms(150));
  EXPECT_EQ(st.timeouts_penalized, 2u);
  EXPECT_EQ(st.timeouts_reported,
            st.timeouts_penalized + st.timeouts_deduped);
  mgr.unregister_flow(a);
  mgr.unregister_flow(b);
}

TEST(CongestionManagerTest, EpochsCollapseWithinWindow) {
  CongestionManager mgr(small_cm(64.0));
  FlowHandle* a = mgr.register_flow();
  FlowHandle* b = mgr.register_flow();
  a->on_epoch(0.10, at_ms(1000));  // applied (first)
  b->on_epoch(0.30, at_ms(1001));  // pending: within the window
  EXPECT_EQ(mgr.stats().epochs_reported, 2u);
  EXPECT_EQ(mgr.stats().epochs_applied, 1u);
  a->on_epoch(0.30, at_ms(1100));  // window expired → applies mean(0.3, 0.3)
  EXPECT_EQ(mgr.stats().epochs_applied, 2u);
  mgr.unregister_flow(a);
  mgr.unregister_flow(b);
}

TEST(CongestionManagerTest, DonationMovesShareNotAggregate) {
  CongestionManager mgr(small_cm(32.0));
  FlowHandle* video = mgr.register_flow(1.0);
  FlowHandle* bulk = mgr.register_flow(1.0);
  const double aggregate_before = mgr.aggregate_cwnd();
  const double bulk_before = bulk->share();
  // The coordinator's rescale hook on a CM flow is a donation: video halves
  // its weight; the freed window goes to bulk, the aggregate is unchanged.
  video->scale_window(0.5);
  EXPECT_DOUBLE_EQ(mgr.aggregate_cwnd(), aggregate_before);
  EXPECT_DOUBLE_EQ(video->weight(), 0.5);
  EXPECT_GT(bulk->share(), bulk_before);
  EXPECT_LT(video->share(), bulk->share());
  EXPECT_EQ(mgr.stats().donation_rescales, 1u);
  mgr.unregister_flow(video);
  mgr.unregister_flow(bulk);
}

TEST(CongestionManagerTest, AggregateRescaleScalesEveryShare) {
  CongestionManager mgr(small_cm(16.0));
  FlowHandle* a = mgr.register_flow();
  FlowHandle* b = mgr.register_flow();
  mgr.scale_aggregate(2.0);
  EXPECT_DOUBLE_EQ(mgr.aggregate_cwnd(), 32.0);
  EXPECT_DOUBLE_EQ(a->share(), 16.0);
  EXPECT_DOUBLE_EQ(b->share(), 16.0);
  EXPECT_EQ(mgr.stats().aggregate_rescales, 1u);
  mgr.unregister_flow(a);
  mgr.unregister_flow(b);
}

TEST(CongestionManagerTest, SharesAlwaysConserveAggregate) {
  CongestionManager mgr(small_cm(11.3));
  std::vector<FlowHandle*> flows;
  for (int i = 0; i < 5; ++i) {
    flows.push_back(mgr.register_flow(0.5 + i));
    double sum = 0.0;
    for (FlowHandle* f : flows) sum += f->share();
    EXPECT_NEAR(sum, mgr.aggregate_cwnd(), 1e-9);
  }
  for (FlowHandle* f : flows) mgr.unregister_flow(f);
}

// ------------------------------------------------------------ auditor ----

TEST(CmAuditorTest, CleanStreamHasNoViolations) {
  CongestionManager mgr(small_cm(12.0));
  audit::AuditConfig acfg;
  acfg.dump_on_violation = false;
  const audit::CmAuditor* aud = mgr.enable_audit(acfg);
  FlowHandle* a = mgr.register_flow();
  FlowHandle* b = mgr.register_flow(3.0);
  a->on_ack(1, at_ms(1));
  a->on_timeout(at_ms(20));
  b->on_timeout(at_ms(21));
  b->on_epoch(0.05, at_ms(500));
  a->scale_window(0.5);
  mgr.scale_aggregate(1.25);
  mgr.unregister_flow(a);
  mgr.unregister_flow(b);
  EXPECT_GT(aud->events_seen(), 0u);
  EXPECT_GT(aud->checks_performed(), 0u);
  EXPECT_TRUE(aud->violations().empty());
}

TEST(CmAuditorTest, SeededConservationViolationTrips) {
  audit::CmAuditor aud;
  audit::Event join;
  join.type = audit::EventType::CmFlowJoin;
  join.seq = 1;
  join.a = 1;
  aud.on_event(join);
  audit::Event app;
  app.type = audit::EventType::CmApportion;
  app.a = 1;
  app.x = 5.0;   // shares sum
  app.y = 8.0;   // aggregate — mismatch: conservation broken
  app.d = 5'000'000;
  aud.on_event(app);
  ASSERT_EQ(aud.violations().size(), 1u);
  EXPECT_EQ(aud.violations()[0].invariant, "cm-share-conservation");
}

TEST(CmAuditorTest, MissingReapportionAfterJoinTrips) {
  audit::CmAuditor aud;
  audit::Event join;
  join.type = audit::EventType::CmFlowJoin;
  join.seq = 1;
  join.a = 1;
  aud.on_event(join);
  audit::Event loss;
  loss.type = audit::EventType::CmLoss;
  loss.a = 1;
  loss.b = 1;
  loss.flag = 0x2;
  aud.on_event(loss);  // join not followed by an apportionment
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "cm-reapportion-ordering");
}

TEST(CmAuditorTest, StarvationViolationTrips) {
  audit::CmAuditor aud;
  audit::CmAuditor::Policy policy;
  policy.share_floor = 1.0;
  policy.max_cwnd = 4096.0;
  aud.set_policy(policy);
  audit::Event join;
  join.type = audit::EventType::CmFlowJoin;
  join.seq = 1;
  join.a = 1;
  aud.on_event(join);
  audit::Event app;
  app.type = audit::EventType::CmApportion;
  app.a = 1;
  app.x = 8.0;
  app.y = 8.0;
  app.d = 100;  // min share 1e-4 « min(floor 1, 8/1)
  aud.on_event(app);
  ASSERT_EQ(aud.violations().size(), 1u);
  EXPECT_EQ(aud.violations()[0].invariant, "cm-anti-starvation");
}

TEST(CmAuditorTest, DedupAccountingViolationTrips) {
  audit::CmAuditor aud;
  audit::Event loss;
  loss.type = audit::EventType::CmLoss;
  loss.a = 3;
  loss.b = 1;
  loss.c = 1;  // 3 != 1 + 1
  loss.flag = 0x2;
  aud.on_event(loss);
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "cm-loss-dedup");
}

// -------------------------------------------------------- integration ----

struct CmPair {
  sim::Simulator sim;
  wire::DirectWirePair wires_a{sim, Duration::millis(15)};
  wire::DirectWirePair wires_b{sim, Duration::millis(15)};
  CongestionManager mgr;
  std::unique_ptr<core::IqRudpConnection> snd_a, rcv_a, snd_b, rcv_b;

  CmPair() : mgr(small_cm(8.0)) {
    rudp::RudpConfig cfg;
    snd_a = std::make_unique<core::IqRudpConnection>(wires_a.a(), cfg,
                                                     rudp::Role::Client);
    rcv_a = std::make_unique<core::IqRudpConnection>(wires_a.b(), cfg,
                                                     rudp::Role::Server);
    cfg.conn_id = 2;
    snd_b = std::make_unique<core::IqRudpConnection>(wires_b.a(), cfg,
                                                     rudp::Role::Client);
    rcv_b = std::make_unique<core::IqRudpConnection>(wires_b.b(), cfg,
                                                     rudp::Role::Server);
    rcv_a->listen();
    rcv_b->listen();
    snd_a->connect();
    snd_b->connect();
    sim.run_until(at_ms(200));
  }
};

TEST(CmIntegrationTest, ConnectionWindowIsTheApportionedShare) {
  CmPair p;
  FlowHandle* fa = p.snd_a->attach_cm(p.mgr);
  FlowHandle* fb = p.snd_b->attach_cm(p.mgr);
  EXPECT_EQ(p.mgr.flow_count(), 2u);
  EXPECT_DOUBLE_EQ(p.snd_a->transport().congestion().cwnd(), fa->share());
  EXPECT_DOUBLE_EQ(p.snd_b->transport().congestion().cwnd(), fb->share());

  for (int i = 0; i < 200; ++i) {
    p.snd_a->send({.bytes = 1400});
    p.snd_b->send({.bytes = 1400});
  }
  p.sim.run_until(at_ms(20'000));
  EXPECT_GT(p.rcv_a->transport().stats().messages_delivered, 100u);
  EXPECT_GT(p.rcv_b->transport().stats().messages_delivered, 100u);
  // Still delegated, still conserving.
  EXPECT_DOUBLE_EQ(p.snd_a->transport().congestion().cwnd(), fa->share());
  EXPECT_NEAR(fa->share() + fb->share(), p.mgr.aggregate_cwnd(), 1e-9);
  p.snd_a->detach_cm();
  p.snd_b->detach_cm();
}

TEST(CmIntegrationTest, DetachRestoresBuiltInController) {
  CmPair p;
  const double builtin = p.snd_a->transport().congestion().cwnd();
  p.snd_a->attach_cm(p.mgr);
  EXPECT_NE(p.snd_a->transport().congestion().name(), "lda");
  p.snd_a->detach_cm();
  EXPECT_EQ(p.snd_a->transport().congestion().name(), "lda");
  EXPECT_DOUBLE_EQ(p.snd_a->transport().congestion().cwnd(), builtin);
  EXPECT_EQ(p.mgr.flow_count(), 0u);
  EXPECT_EQ(p.snd_a->cm_flow(), nullptr);
}

TEST(CmIntegrationTest, PriorityAttrOnSendSetsWeight) {
  CmPair p;
  FlowHandle* fa = p.snd_a->attach_cm(p.mgr);
  p.snd_b->attach_cm(p.mgr);
  attr::AttrList attrs{{attr::kFlowPriority, 2.0}};
  p.snd_a->send_with_attrs({.bytes = 1400}, attrs);
  EXPECT_DOUBLE_EQ(fa->weight(), 2.0);
  EXPECT_EQ(p.snd_a->coordinator().stats().priority_updates, 1u);
  EXPECT_GT(fa->share(), p.mgr.aggregate_cwnd() / 2.0);
  p.snd_a->detach_cm();
  p.snd_b->detach_cm();
}

TEST(CmIntegrationTest, CoordinatorDonationKeepsAggregate) {
  // A resolution adaptation on a CM-attached flow reweights the flow
  // (donation) instead of inflating the shared aggregate.
  CmPair p;
  FlowHandle* fa = p.snd_a->attach_cm(p.mgr);
  FlowHandle* fb = p.snd_b->attach_cm(p.mgr);
  const double aggregate = p.mgr.aggregate_cwnd();
  const double fb_before = fb->share();
  attr::AttrList attrs{{attr::kAdaptPktSize, -0.5},  // frames grow → shrink
                       {attr::kAppFrameBytes, std::int64_t{700}}};
  p.snd_a->send_with_attrs({.bytes = 700}, attrs);
  EXPECT_DOUBLE_EQ(p.mgr.aggregate_cwnd(), aggregate);
  EXPECT_LT(fa->weight(), 1.0);
  EXPECT_GT(fb->share(), fb_before);
  p.snd_a->detach_cm();
  p.snd_b->detach_cm();
}

TEST(CmIntegrationTest, AggregateRescaleModeRoutesToManager) {
  sim::Simulator sim;
  wire::DirectWirePair wires(sim, Duration::millis(15));
  CongestionManager mgr(small_cm(8.0));
  rudp::RudpConfig cfg;
  core::CoordinatorConfig ccfg;
  ccfg.cm_aggregate_rescale = true;
  core::IqRudpConnection snd(wires.a(), cfg, rudp::Role::Client, ccfg);
  core::IqRudpConnection rcv(wires.b(), cfg, rudp::Role::Server);
  rcv.listen();
  snd.connect();
  sim.run_until(at_ms(200));

  snd.attach_cm(mgr);
  const double aggregate = mgr.aggregate_cwnd();
  attr::AttrList attrs{{attr::kAdaptPktSize, 0.2},
                      {attr::kAppFrameBytes, std::int64_t{700}}};
  snd.send_with_attrs({.bytes = 700}, attrs);
  EXPECT_NEAR(mgr.aggregate_cwnd(), aggregate * 1.25, 1e-9);
  EXPECT_EQ(snd.coordinator().stats().aggregate_rescales, 1u);
  EXPECT_EQ(mgr.stats().aggregate_rescales, 1u);
  snd.detach_cm();
}

TEST(CmIntegrationTest, FailureDetachesAndReturnsShare) {
  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 1.0;  // dead path: the handshake can never finish
  wire::LossyWirePair dead(sim, lcfg);
  wire::DirectWirePair live(sim, Duration::millis(15));
  CongestionManager mgr(small_cm(8.0));
  rudp::RudpConfig cfg;
  cfg.connect_retry = Duration::millis(100);
  cfg.max_connect_attempts = 2;
  core::IqRudpConnection doomed(dead.a(), cfg, rudp::Role::Client);
  rudp::RudpConfig live_cfg;
  live_cfg.conn_id = 2;
  core::IqRudpConnection snd(live.a(), live_cfg, rudp::Role::Client);
  core::IqRudpConnection rcv(live.b(), live_cfg, rudp::Role::Server);
  rcv.listen();
  snd.connect();
  doomed.connect();
  FlowHandle* doomed_flow = doomed.attach_cm(mgr);
  FlowHandle* live_flow = snd.attach_cm(mgr);
  ASSERT_EQ(mgr.flow_count(), 2u);
  EXPECT_DOUBLE_EQ(doomed_flow->share(), 4.0);

  sim.run_until(at_ms(10'000));
  EXPECT_TRUE(doomed.transport().failed());
  // The failed flow auto-detached; its share went back to the survivor.
  EXPECT_EQ(doomed.cm_flow(), nullptr);
  EXPECT_EQ(mgr.flow_count(), 1u);
  EXPECT_DOUBLE_EQ(live_flow->share(), mgr.aggregate_cwnd());
  snd.detach_cm();
}

TEST(CmIntegrationTest, EpochsExportCmAttrs) {
  CmPair p;
  p.snd_a->attach_cm(p.mgr);
  p.snd_b->attach_cm(p.mgr);
  for (int i = 0; i < 200; ++i) p.snd_a->send({.bytes = 1400});
  p.sim.run_until(at_ms(60'000));
  auto& store = p.snd_a->attributes();
  ASSERT_TRUE(store.has(attr::kCmShare));
  ASSERT_TRUE(store.has(attr::kCmAggregateCwnd));
  ASSERT_TRUE(store.has(attr::kCmFlows));
  EXPECT_EQ(*store.query_double(attr::kCmFlows), 2.0);
  EXPECT_GT(*store.query_double(attr::kCmShare), 0.0);
  EXPECT_GE(*store.query_double(attr::kCmAggregateCwnd),
            *store.query_double(attr::kCmShare));
  p.snd_a->detach_cm();
  p.snd_b->detach_cm();
}

}  // namespace
}  // namespace iq::cm
