// Tests for the experiment harness: scheme construction, scenario configs,
// comparison rendering, and a reduced-scale end-to-end run.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include <cstdlib>

#include "iq/harness/cityscale.hpp"
#include "iq/harness/json.hpp"
#include "iq/harness/runner.hpp"
#include "iq/harness/paper.hpp"
#include "iq/harness/scenarios.hpp"

namespace iq::harness {
namespace {

// Non-finite doubles must render as `null`, never as bare nan/inf tokens
// that make the whole document unparseable (the contract json.hpp
// documents; the audit flight recorder mirrors it).
TEST(JsonWriterTest, NonFiniteDoublesAreNull) {
  JsonWriter w;
  w.begin_object()
      .field("nan", std::nan(""))
      .field("pinf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .field("finite", 2.5)
      .end_object();
  const std::string json = w.take();

  // "nan"/"inf" appear only inside the key strings, never as bare tokens.
  std::size_t nan_count = 0;
  for (std::size_t p = json.find("nan"); p != std::string::npos;
       p = json.find("nan", p + 1)) {
    ++nan_count;
  }
  EXPECT_EQ(nan_count, 1u) << json;
  std::size_t inf_count = 0;
  for (std::size_t p = json.find("inf"); p != std::string::npos;
       p = json.find("inf", p + 1)) {
    ++inf_count;
  }
  EXPECT_EQ(inf_count, 2u) << json;
  EXPECT_NE(json.find("\"nan\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pinf\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ninf\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"finite\":2.5"), std::string::npos) << json;
}

// Round trip through a nested document: the writer's output stays
// structurally balanced with non-finite metrics present.
TEST(JsonWriterTest, NonFiniteRoundTripStaysBalanced) {
  JsonWriter w;
  w.begin_object().key("metrics").begin_object();
  w.field("owd_p99", std::numeric_limits<double>::quiet_NaN());
  w.field("rate", 1.0e6);
  w.end_object().end_object();
  const std::string json = w.take();

  long depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0) << json;
  }
  EXPECT_EQ(depth, 0) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_NE(json.find("\"owd_p99\":null"), std::string::npos) << json;
}

TEST(SchemeSpecTest, FactoriesSetModes) {
  EXPECT_TRUE(SchemeSpec::tcp().use_tcp);
  EXPECT_EQ(SchemeSpec::rudp().mode, core::CoordinationMode::Uncoordinated);
  EXPECT_EQ(SchemeSpec::iq_rudp().mode, core::CoordinationMode::Coordinated);
  EXPECT_FALSE(SchemeSpec::iq_rudp_no_cond().enable_cond);
  EXPECT_EQ(SchemeSpec::app_only().cc, rudp::CcKind::Fixed);
}

TEST(ScenariosTest, ConfigsMatchPaperParameters) {
  const auto t1 = scenarios::table1(SchemeSpec::tcp(), false);
  EXPECT_EQ(t1.net.bottleneck_bps, 20'000'000);
  EXPECT_EQ(t1.net.path_rtt.ms(), 30);
  EXPECT_EQ(t1.cbr_rate_bps, 18'000'000);

  const auto t3 = scenarios::table3(SchemeSpec::iq_rudp());
  EXPECT_EQ(t3.adaptation, echo::AdaptKind::Marking);
  // Thresholds are the paper's 30 %/5 % scaled to the loss ratios our LDA
  // controller actually produces (see the scenario comment).
  EXPECT_GT(t3.upper_threshold, t3.lower_threshold);
  EXPECT_DOUBLE_EQ(t3.recv_loss_tolerance, 0.40);
  EXPECT_GE(t3.cbr_rate_bps, 10'000'000);

  const auto t7 = scenarios::table7(SchemeSpec::iq_rudp());
  EXPECT_EQ(t7.adapt_granularity, 20u);

  const auto t8 = scenarios::table8(SchemeSpec::iq_rudp());
  EXPECT_EQ(t8.net.path_rtt.ms(), 250);  // 125 ms one-way
  EXPECT_GT(t8.frame_rate, 0.0);         // rate-based application
  EXPECT_TRUE(t8.attach_cond);
}

TEST(ScenariosTest, SchemesShareTraceSeed) {
  const auto a = scenarios::table5(SchemeSpec::rudp());
  const auto b = scenarios::table5(SchemeSpec::iq_rudp());
  EXPECT_EQ(a.trace_seed, b.trace_seed);
  EXPECT_EQ(a.total_frames, b.total_frames);
}

TEST(ComparisonTest, RendersPaperAndMeasuredRows) {
  Comparison cmp("Table X", {"Time(s)", "Thr(KB/s)"});
  cmp.add_paper_row("IQ-RUDP", {60.0, 99.0});
  cmp.add_measured_row("IQ-RUDP", {58.2, 101.3});
  cmp.add_note("shape check only");
  const std::string out = cmp.render();
  EXPECT_NE(out.find("Table X"), std::string::npos);
  EXPECT_NE(out.find("paper"), std::string::npos);
  EXPECT_NE(out.find("measured"), std::string::npos);
  EXPECT_NE(out.find("note: shape check only"), std::string::npos);
}

TEST(RunExperimentTest, SmallRudpRunCompletes) {
  ExperimentConfig cfg = scenarios::base();
  cfg.scheme = SchemeSpec::iq_rudp();
  cfg.frame_rate = 20;
  cfg.total_frames = 50;
  cfg.fixed_frame_bytes = 5000;
  cfg.max_sim_time = Duration::seconds(120);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.summary.messages, 50u);
  EXPECT_DOUBLE_EQ(r.summary.delivered_pct, 100.0);
  EXPECT_GT(r.summary.duration_s, 1.0);
}

TEST(RunExperimentTest, SmallTcpRunCompletes) {
  ExperimentConfig cfg = scenarios::base();
  cfg.scheme = SchemeSpec::tcp();
  cfg.frame_rate = 20;
  cfg.total_frames = 50;
  cfg.fixed_frame_bytes = 5000;
  cfg.max_sim_time = Duration::seconds(120);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.summary.messages, 50u);
}

TEST(RunExperimentTest, DeterministicAcrossRuns) {
  ExperimentConfig cfg = scenarios::base();
  cfg.scheme = SchemeSpec::rudp();
  cfg.frame_rate = 50;
  cfg.total_frames = 40;
  cfg.fixed_frame_bytes = 3000;
  cfg.cbr_rate_bps = 16'000'000;
  cfg.max_sim_time = Duration::seconds(60);
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.summary.duration_s, b.summary.duration_s);
  EXPECT_EQ(a.summary.throughput_kBps, b.summary.throughput_kBps);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(RunExperimentTest, CrossTrafficCausesLoss) {
  ExperimentConfig cfg = scenarios::base();
  cfg.scheme = SchemeSpec::rudp();
  cfg.frame_rate = 0;  // ASAP
  cfg.total_frames = 500;
  cfg.fixed_frame_bytes = 1400;
  cfg.cbr_rate_bps = 19'000'000;  // nearly saturates the bottleneck
  cfg.cross_start = Duration::millis(100);
  cfg.max_sim_time = Duration::seconds(120);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.rudp.segments_retransmitted, 0u);
  EXPECT_GT(r.app_lifetime_loss_ratio, 0.0);
}

TEST(RunExperimentTest, JitterSeriesCollectedWhenRequested) {
  ExperimentConfig cfg = scenarios::base();
  cfg.scheme = SchemeSpec::iq_rudp();
  cfg.frame_rate = 50;
  cfg.total_frames = 60;
  cfg.fixed_frame_bytes = 1000;
  cfg.collect_jitter_series = true;
  cfg.max_sim_time = Duration::seconds(60);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.jitter_series.size(), 40u);
}


// RAII save/set/restore for one environment variable (tests only; the
// harness itself never mutates the environment).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(RunnerThreadsTest, EnvOverridePinsPoolWidth) {
  ScopedEnv serial("IQ_HARNESS_SERIAL", nullptr);
  ScopedEnv env("IQ_HARNESS_THREADS", "3");
  EXPECT_EQ(harness_threads_env(), 3u);
  EXPECT_EQ(runner_threads(8), 3u);
  EXPECT_EQ(runner_threads(2), 2u);  // still capped by the job count
  EXPECT_EQ(cityscale_shards(), 3u);
}

TEST(RunnerThreadsTest, ExplicitArgumentBeatsEnv) {
  ScopedEnv serial("IQ_HARNESS_SERIAL", nullptr);
  ScopedEnv env("IQ_HARNESS_THREADS", "3");
  EXPECT_EQ(runner_threads(8, 5), 5u);
}

TEST(RunnerThreadsTest, SerialBeatsEverything) {
  ScopedEnv serial("IQ_HARNESS_SERIAL", "1");
  ScopedEnv env("IQ_HARNESS_THREADS", "3");
  EXPECT_EQ(runner_threads(8), 1u);
  EXPECT_EQ(runner_threads(8, 5), 1u);
  EXPECT_EQ(cityscale_shards(), 1u);
}

TEST(RunnerThreadsTest, InvalidEnvValuesAreUnset) {
  ScopedEnv serial("IQ_HARNESS_SERIAL", nullptr);
  for (const char* bad : {"0", "-2", "garbage", "", "1025", "3x"}) {
    ScopedEnv env("IQ_HARNESS_THREADS", bad);
    EXPECT_EQ(harness_threads_env(), 0u) << "value=\"" << bad << "\"";
  }
  ScopedEnv env("IQ_HARNESS_THREADS", nullptr);
  EXPECT_EQ(harness_threads_env(), 0u);
}

}  // namespace
}  // namespace iq::harness
