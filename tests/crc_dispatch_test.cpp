// Runtime-dispatched CRC-32 (docs/PERFORMANCE.md): every tier — pclmul,
// slice8, bytewise — must be bit-identical, or a CPU upgrade would silently
// change the wire format. Three lines of defence here:
//
//   1. The sealed-v2 golden datagram re-encoded under each forced tier
//      (the codec path the transport actually takes).
//   2. A fuzz sweep over lengths and buffer alignments against the
//      bytewise oracle, directly on the kernels.
//   3. Streaming chunk-boundary invariance per tier: splitting a message
//      at any point and threading the state through must not change the
//      result (the contract `crc32_update` promises its callers).
//
// Tiers are forced in-process via crc32_select_impl(); scripts/ci.sh
// additionally reruns the golden suites with IQ_CRC_IMPL set per tier so
// the env-var startup path gets the same coverage under sanitizers.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "iq/common/bytes.hpp"
#include "iq/common/rng.hpp"
#include "iq/rudp/codec.hpp"
#include "iq/rudp/segment.hpp"

namespace iq {
namespace {

/// Restores whatever tier the binary started with, so a forced selection
/// in one test can't leak into later tests (or the other suites linked
/// into a future combined binary).
class ScopedCrcImpl {
 public:
  explicit ScopedCrcImpl(const char* name) : saved_(crc32_impl_name()) {
    forced_ = crc32_select_impl(name);
  }
  ~ScopedCrcImpl() { crc32_select_impl(saved_.c_str()); }
  bool forced() const { return forced_; }

 private:
  std::string saved_;
  bool forced_ = false;
};

std::vector<const char*> available_tiers() {
  std::vector<const char*> tiers;
  if (crc32_pclmul_supported()) tiers.push_back("pclmul");
  tiers.push_back("slice8");
  tiers.push_back("bytewise");
  return tiers;
}

// The standard IEEE check vector: crc32("123456789") == 0xCBF43926. Pins
// the polynomial, reflection and init/final XOR for every kernel at once.
TEST(CrcDispatchTest, CheckVectorHoldsForEveryTier) {
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  const BytesView v{msg, sizeof(msg)};
  const auto finish = [&](std::uint32_t raw) { return raw ^ kCrc32Init; };
  EXPECT_EQ(finish(crc32_update_bytewise(kCrc32Init, v)), 0xCBF43926u);
  EXPECT_EQ(finish(crc32_update_slice8(kCrc32Init, v)), 0xCBF43926u);
  if (crc32_pclmul_supported()) {
    // Too short for folding (goes through the slice8 path) — extend past
    // 64 bytes below in the fuzz test; this pins the short-input path.
    EXPECT_EQ(finish(crc32_update_pclmul(kCrc32Init, v)), 0xCBF43926u);
  }
}

// The sealed v2 datagram from rudp_codec_test's wire freeze, re-encoded
// under every tier the CPU offers. The checksum bytes at offset 4 are the
// CRC of the whole sealed image — any tier disagreement flips them.
TEST(CrcDispatchTest, SealedV2GoldenBitIdenticalAcrossTiers) {
  rudp::Segment s;
  s.type = rudp::SegmentType::Data;
  s.conn_id = 7;
  s.seq = 0x01020304;
  s.cum_ack = 0x0a0b0c0d;
  s.rwnd_packets = 512;
  s.ts_us = 0x1122334455ull;
  s.ts_echo_us = 0x5544332211ull;
  s.msg_id = 9;
  s.frag_index = 0;
  s.frag_count = 1;
  s.marked = true;
  s.payload_bytes = 8;
  const Bytes payload{1, 2, 3, 4, 5, 6, 7, 8};

  static const std::uint8_t kChecksum[] = {0xf2, 0x56, 0x5d, 0xcb};

  for (const char* tier : available_tiers()) {
    ScopedCrcImpl impl(tier);
    ASSERT_TRUE(impl.forced()) << tier;
    ASSERT_STREQ(crc32_impl_name(), tier);
    const Bytes wire = rudp::encode_segment(s, payload);
    ASSERT_EQ(wire.size(), 60u) << tier;
    EXPECT_EQ(std::memcmp(wire.data() + 4, kChecksum, 4), 0)
        << "checksum drifted under tier " << tier;
    // Decode must accept its own seal under the same tier…
    EXPECT_TRUE(rudp::decode_segment(wire).has_value()) << tier;
  }

  // …and across tiers: a datagram sealed by one kernel must verify under
  // any other (receiver and sender need not share a CPU generation).
  Bytes sealed;
  {
    ScopedCrcImpl impl("bytewise");
    sealed = rudp::encode_segment(s, payload);
  }
  for (const char* tier : available_tiers()) {
    ScopedCrcImpl impl(tier);
    EXPECT_TRUE(rudp::decode_segment(sealed).has_value()) << tier;
  }
}

// Fuzz lengths and alignments against the bytewise oracle. Lengths cover
// every interesting boundary of both fast kernels (slice8's 8-byte word
// loop, pclmul's 64-byte fold entry, 16-byte single-lane folds, sub-16
// tails); alignments 0..15 shift the buffer start across a 16-byte line
// so unaligned SIMD loads are exercised.
TEST(CrcDispatchTest, FuzzedLengthsAndAlignmentsMatchBytewiseOracle) {
  Rng rng(20260808);
  std::vector<std::uint8_t> arena(5000 + 16);
  for (auto& b : arena) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }

  std::vector<std::size_t> lengths = {0,  1,  7,  8,  9,  15,  16,  17,
                                      63, 64, 65, 79, 80, 127, 128, 1400};
  for (int i = 0; i < 24; ++i) {
    lengths.push_back(static_cast<std::size_t>(rng.uniform_int(0, 5000)));
  }

  for (std::size_t len : lengths) {
    for (std::size_t align = 0; align < 16; ++align) {
      const BytesView v{arena.data() + align, len};
      const std::uint32_t want = crc32_update_bytewise(kCrc32Init, v);
      EXPECT_EQ(crc32_update_slice8(kCrc32Init, v), want)
          << "slice8 len=" << len << " align=" << align;
      if (crc32_pclmul_supported()) {
        EXPECT_EQ(crc32_update_pclmul(kCrc32Init, v), want)
            << "pclmul len=" << len << " align=" << align;
      }
      // Nonzero running state (mid-stream seed) must agree too — the
      // pclmul seed injection XORs state into the first lane and is easy
      // to get wrong in exactly this case.
      const std::uint32_t seed = 0xdeadbeef;
      EXPECT_EQ(crc32_update_slice8(seed, v), crc32_update_bytewise(seed, v))
          << "slice8 seeded len=" << len << " align=" << align;
      if (crc32_pclmul_supported()) {
        EXPECT_EQ(crc32_update_pclmul(seed, v), crc32_update_bytewise(seed, v))
            << "pclmul seeded len=" << len << " align=" << align;
      }
    }
  }
}

// The streaming contract: crc32_update over a whole buffer equals any
// chained sequence of updates over its pieces, for every tier. Split
// points land on and around the kernels' internal block sizes.
TEST(CrcDispatchTest, StreamingChunkBoundariesAreInvariantPerTier) {
  Rng rng(42);
  std::vector<std::uint8_t> buf(777);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const BytesView whole{buf.data(), buf.size()};

  const std::size_t splits[] = {1, 7, 8, 15, 16, 63, 64, 65, 200, 776};
  for (const char* tier : available_tiers()) {
    ScopedCrcImpl impl(tier);
    ASSERT_TRUE(impl.forced()) << tier;
    const std::uint32_t want = crc32_update(kCrc32Init, whole);
    for (std::size_t cut : splits) {
      std::uint32_t st = crc32_update(kCrc32Init, whole.subspan(0, cut));
      st = crc32_update(st, whole.subspan(cut));
      EXPECT_EQ(st, want) << tier << " cut=" << cut;
    }
    // Three-way split with a tiny middle chunk (degenerate stream).
    std::uint32_t st = crc32_update(kCrc32Init, whole.subspan(0, 100));
    st = crc32_update(st, whole.subspan(100, 1));
    st = crc32_update(st, whole.subspan(101));
    EXPECT_EQ(st, want) << tier << " three-way";
  }
}

// Selection semantics: unknown names are refused, "pclmul" is refused
// (not downgraded) when the CPU lacks the instructions, and the active
// tier's name always reflects the kernel in use.
TEST(CrcDispatchTest, SelectionRefusesUnknownAndUnsupportedTiers) {
  const std::string before = crc32_impl_name();
  EXPECT_FALSE(crc32_select_impl("sse42"));
  EXPECT_FALSE(crc32_select_impl(""));
  EXPECT_FALSE(crc32_select_impl(nullptr));
  EXPECT_STREQ(crc32_impl_name(), before.c_str());  // refusals change nothing

  if (!crc32_pclmul_supported()) {
    EXPECT_FALSE(crc32_select_impl("pclmul"));
  } else {
    ScopedCrcImpl impl("pclmul");
    EXPECT_TRUE(impl.forced());
    EXPECT_STREQ(crc32_impl_name(), "pclmul");
  }
  {
    ScopedCrcImpl impl("slice8");
    EXPECT_TRUE(impl.forced());
    EXPECT_STREQ(crc32_impl_name(), "slice8");
  }
  EXPECT_STREQ(crc32_impl_name(), before.c_str());
}

}  // namespace
}  // namespace iq
