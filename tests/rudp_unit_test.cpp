// Unit tests for RUDP building blocks: sequence arithmetic, RTT estimation,
// loss monitoring, congestion controllers, send/recv buffers, skip budget.

#include <gtest/gtest.h>

#include <cmath>

#include "iq/rudp/congestion.hpp"
#include "iq/rudp/loss_monitor.hpp"
#include "iq/rudp/recv_buffer.hpp"
#include "iq/rudp/reliability.hpp"
#include "iq/rudp/rtt_estimator.hpp"
#include "iq/rudp/send_buffer.hpp"
#include "iq/rudp/seq.hpp"

namespace iq::rudp {
namespace {

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::zero() + Duration::millis(ms);
}

// ------------------------------------------------------------------ seq ---

TEST(SeqTest, SerialComparisons) {
  EXPECT_TRUE(wire_seq_lt(1, 2));
  EXPECT_TRUE(wire_seq_lt(0xfffffffe, 0xffffffff));
  EXPECT_TRUE(wire_seq_lt(0xffffffff, 0));  // wraparound
  EXPECT_TRUE(wire_seq_gt(5, 0xfffffff0));
  EXPECT_EQ(wire_seq_diff(5, 3), 2);
  EXPECT_EQ(wire_seq_diff(1, 0xffffffff), 2);
}

TEST(SeqTest, UnwrapNearReference) {
  EXPECT_EQ(unwrap(100, 90), 100u);
  EXPECT_EQ(unwrap(90, 100), 90u);
}

TEST(SeqTest, UnwrapAcrossEraBoundary) {
  const Seq ref = (Seq{1} << 32) - 5;  // near the end of era 0
  EXPECT_EQ(unwrap(3, ref), (Seq{1} << 32) + 3);
  EXPECT_EQ(unwrap(0xfffffff0, ref), (Seq{1} << 32) - 16);
}

TEST(SeqTest, UnwrapBackwardFromNewEra) {
  const Seq ref = (Seq{1} << 32) + 5;
  EXPECT_EQ(unwrap(0xfffffffa, ref), (Seq{1} << 32) - 6);
}

TEST(SeqTest, UnwrapManySequential) {
  Seq expected = 1;
  Seq ref = 1;
  for (int i = 0; i < 200000; ++i) {
    EXPECT_EQ(unwrap(to_wire(expected), ref), expected);
    ref = expected;
    ++expected;
  }
}

// ------------------------------------------------------------------ rtt ---

TEST(RttEstimatorTest, FirstSampleInitializes) {
  RttEstimator est;
  est.add_sample(Duration::millis(100));
  EXPECT_EQ(est.srtt().ms(), 100);
  EXPECT_EQ(est.rttvar().ms(), 50);
}

TEST(RttEstimatorTest, ConvergesToStableRtt) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(Duration::millis(30));
  EXPECT_NEAR(static_cast<double>(est.srtt().ms()), 30.0, 1.0);
  // RTO floors at min_rto even when variance collapses.
  EXPECT_GE(est.rto(), Duration::millis(200));
}

TEST(RttEstimatorTest, RtoCoversVariance) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) {
    est.add_sample(Duration::millis(i % 2 == 0 ? 20 : 120));
  }
  EXPECT_GT(est.rto(), est.srtt());
}

TEST(RttEstimatorTest, BackoffDoublesAndResets) {
  RttEstimator est;
  est.add_sample(Duration::millis(300));
  const Duration base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto().ns(), (base * 2).ns());
  est.backoff();
  EXPECT_EQ(est.rto().ns(), (base * 4).ns());
  // A fresh sample resets the multiplier (and re-smooths rttvar downward,
  // so the new RTO is at most the pre-backoff base).
  est.add_sample(Duration::millis(300));
  EXPECT_LE(est.rto().ns(), base.ns());
  EXPECT_GE(est.rto(), Duration::millis(300));
}

TEST(RttEstimatorTest, RtoCapped) {
  RttConfig cfg;
  cfg.max_rto = Duration::seconds(2);
  RttEstimator est(cfg);
  est.add_sample(Duration::millis(900));
  for (int i = 0; i < 10; ++i) est.backoff();
  EXPECT_LE(est.rto(), Duration::seconds(2));
}

TEST(RttEstimatorTest, NoSampleUsesInitialRto) {
  RttEstimator est;
  EXPECT_EQ(est.rto().ms(), 1000);
  EXPECT_FALSE(est.has_sample());
}

// --------------------------------------------------------------- monitor --

TEST(LossMonitorTest, EpochClosesAtPacketCount) {
  LossMonitor mon(10);
  std::vector<EpochReport> reports;
  mon.set_epoch_handler([&](const EpochReport& r) { reports.push_back(r); });
  mon.on_acked(9, 9 * 1400, at_ms(10));
  EXPECT_TRUE(reports.empty());
  mon.on_lost(1, at_ms(20));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_DOUBLE_EQ(reports[0].loss_ratio, 0.1);
  EXPECT_EQ(reports[0].acked, 9u);
  EXPECT_EQ(reports[0].lost, 1u);
}

TEST(LossMonitorTest, RateComputedOverEpochSpan) {
  LossMonitor mon(10);
  EpochReport last;
  mon.set_epoch_handler([&](const EpochReport& r) { last = r; });
  mon.on_acked(1, 1400, at_ms(0));
  mon.on_acked(9, 9 * 1400, at_ms(100));
  // 10 * 1400 B over 100 ms = 1.12 Mb/s.
  EXPECT_NEAR(last.delivered_rate_bps, 1.12e6, 1e4);
}

TEST(LossMonitorTest, SmoothedLossTracksEwma) {
  LossMonitor mon(10, 0.5);
  mon.set_epoch_handler([](const EpochReport&) {});
  mon.on_acked(10, 0, at_ms(1));  // epoch 1: r=0
  mon.on_lost(10, at_ms(2));      // epoch 2: r=1
  EXPECT_DOUBLE_EQ(mon.smoothed_loss_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(mon.last_loss_ratio(), 1.0);
}

TEST(LossMonitorTest, LifetimeRatio) {
  LossMonitor mon(5);
  mon.on_acked(8, 0, at_ms(1));
  mon.on_lost(2, at_ms(2));
  EXPECT_DOUBLE_EQ(mon.lifetime_loss_ratio(), 0.2);
}

// ------------------------------------------------------------ congestion --

TEST(LdaControllerTest, AdditiveIncreasePerWindow) {
  LdaController cc;
  const double w0 = cc.cwnd();
  // One window's worth of acks ≈ +1 packet.
  const int acks = static_cast<int>(w0);
  for (int i = 0; i < acks; ++i) cc.on_ack(1, at_ms(i));
  EXPECT_NEAR(cc.cwnd(), w0 + 1.0, 0.3);
}

TEST(LdaControllerTest, DecreaseProportionalToLossRatio) {
  LdaConfig cfg;
  cfg.initial_cwnd = 100;
  cfg.tcp_friendly_floor = false;
  LdaController cc(cfg);
  cc.on_epoch(0.1, at_ms(1));
  EXPECT_NEAR(cc.cwnd(), 90.0, 1e-9);
  cc.on_epoch(0.0, at_ms(2));  // loss-free epoch: no decrease
  EXPECT_NEAR(cc.cwnd(), 90.0, 1e-9);
}

TEST(LdaControllerTest, DecreaseFloorsAtHalf) {
  LdaConfig cfg;
  cfg.initial_cwnd = 100;
  cfg.tcp_friendly_floor = false;
  LdaController cc(cfg);
  cc.on_epoch(0.9, at_ms(1));
  EXPECT_NEAR(cc.cwnd(), 50.0, 1e-9);
}

TEST(LdaControllerTest, TcpFriendlyFloorApplies) {
  LdaConfig cfg;
  cfg.initial_cwnd = 8;
  LdaController cc(cfg);
  // At 1% loss the TCP-fair window is sqrt(1.5/0.01) ≈ 12.2 > 8: the
  // decrease must not shrink the window below its current value.
  cc.on_epoch(0.01, at_ms(1));
  EXPECT_NEAR(cc.cwnd(), 8.0, 1e-9);
}

TEST(LdaControllerTest, WindowNeverBelowMin) {
  LdaController cc;
  for (int i = 0; i < 50; ++i) cc.on_timeout(at_ms(i));
  EXPECT_GE(cc.cwnd(), 1.0);
}

TEST(LdaControllerTest, ScaleWindowMultiplies) {
  LdaConfig cfg;
  cfg.initial_cwnd = 10;
  LdaController cc(cfg);
  cc.scale_window(1.0 / (1.0 - 0.2));  // rate_chg = 0.2
  EXPECT_NEAR(cc.cwnd(), 12.5, 1e-9);
  cc.scale_window(0.5);
  EXPECT_NEAR(cc.cwnd(), 6.25, 1e-9);
}

TEST(LdaControllerTest, TcpFriendlyWindowFormula) {
  EXPECT_NEAR(LdaController::tcp_friendly_window(0.015),
              std::sqrt(1.5 / 0.015), 1e-9);
  EXPECT_GT(LdaController::tcp_friendly_window(0.0), 1000.0);
}

TEST(AimdControllerTest, SlowStartDoublesPerWindow) {
  AimdConfig cfg;
  cfg.initial_cwnd = 2;
  AimdController cc(cfg);
  EXPECT_TRUE(cc.in_slow_start());
  cc.on_ack(2, at_ms(1));
  EXPECT_NEAR(cc.cwnd(), 4.0, 1e-9);
}

TEST(AimdControllerTest, LossHalvesOncePerRtt) {
  AimdConfig cfg;
  cfg.initial_cwnd = 80;
  cfg.initial_ssthresh = 10;  // start in CA
  AimdController cc(cfg);
  cc.set_srtt(Duration::millis(100));
  cc.on_loss(at_ms(0));
  EXPECT_NEAR(cc.cwnd(), 40.0, 1e-9);
  cc.on_loss(at_ms(10));  // same window: ignored
  EXPECT_NEAR(cc.cwnd(), 40.0, 1e-9);
  cc.on_loss(at_ms(150));  // next RTT: halves again
  EXPECT_NEAR(cc.cwnd(), 20.0, 1e-9);
}

TEST(AimdControllerTest, TimeoutResetsToMin) {
  AimdConfig cfg;
  cfg.initial_cwnd = 50;
  AimdController cc(cfg);
  cc.on_timeout(at_ms(0));
  EXPECT_NEAR(cc.cwnd(), cfg.min_cwnd, 1e-9);
  EXPECT_NEAR(cc.ssthresh(), 25.0, 1e-9);
}

TEST(FixedWindowControllerTest, IgnoresAllSignals) {
  FixedWindowController cc(64);
  cc.on_ack(10, at_ms(0));
  cc.on_loss(at_ms(1));
  cc.on_timeout(at_ms(2));
  cc.on_epoch(0.5, at_ms(3));
  EXPECT_EQ(cc.cwnd(), 64.0);
  // The coordination hook still works (it is the paper's scheme 2 path).
  cc.scale_window(2.0);
  EXPECT_EQ(cc.cwnd(), 128.0);
}

TEST(ControllerFactoryTest, MakesRequestedKinds) {
  EXPECT_EQ(make_controller(CcKind::Lda, 2)->name(), "lda");
  EXPECT_EQ(make_controller(CcKind::Aimd, 2)->name(), "aimd");
  EXPECT_EQ(make_controller(CcKind::Fixed, 32)->name(), "fixed");
  EXPECT_EQ(make_controller(CcKind::Fixed, 32)->cwnd(), 32.0);
}

// ------------------------------------------------------------ send buf ----

Outstanding make_outstanding(Seq seq, bool marked = true,
                             std::uint32_t msg = 1) {
  Outstanding o;
  o.seq = seq;
  o.msg_id = msg;
  o.payload_bytes = 1400;
  o.marked = marked;
  return o;
}

TEST(SendBufferTest, CumulativeAckRemoves) {
  SendBuffer buf;
  for (Seq s = 1; s <= 5; ++s) buf.add(make_outstanding(s));
  EXPECT_EQ(buf.inflight(), 5);
  auto out = buf.on_ack(4, {}, 3);
  EXPECT_EQ(out.newly_acked, 3);
  EXPECT_EQ(out.newly_acked_bytes, 3 * 1400);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.inflight(), 2);
  EXPECT_TRUE(out.cum_advanced);
}

TEST(SendBufferTest, EackMarksWithoutRemoving) {
  SendBuffer buf;
  for (Seq s = 1; s <= 5; ++s) buf.add(make_outstanding(s));
  const std::vector<Seq> eacks{3, 5};
  auto out = buf.on_ack(1, eacks, 30);
  EXPECT_EQ(out.newly_acked, 2);
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.inflight(), 3);
  // Re-acking the same eacks adds nothing.
  auto again = buf.on_ack(1, eacks, 30);
  EXPECT_EQ(again.newly_acked, 0);
}

TEST(SendBufferTest, SackLossDetectionAtThreshold) {
  SendBuffer buf;
  for (Seq s = 1; s <= 6; ++s) buf.add(make_outstanding(s));
  // Seqs 2,3,4 eacked: high water 4, seq 1 is 3 below => lost.
  const std::vector<Seq> eacks{2, 3, 4};
  auto out = buf.on_ack(1, eacks, 3);
  ASSERT_EQ(out.lost.size(), 1u);
  EXPECT_EQ(out.lost[0], 1u);
  // Not reported twice.
  auto again = buf.on_ack(1, eacks, 3);
  EXPECT_TRUE(again.lost.empty());
}

TEST(SendBufferTest, NoLossBelowThreshold) {
  SendBuffer buf;
  for (Seq s = 1; s <= 4; ++s) buf.add(make_outstanding(s));
  const std::vector<Seq> eacks{2, 3};  // high water 3: only 2 above seq 1
  auto out = buf.on_ack(1, eacks, 3);
  EXPECT_TRUE(out.lost.empty());
}

TEST(SendBufferTest, FirstUnackedSkipsSacked) {
  SendBuffer buf;
  for (Seq s = 1; s <= 3; ++s) buf.add(make_outstanding(s));
  const std::vector<Seq> eacks{1};
  buf.on_ack(1, eacks, 30);
  Outstanding* first = buf.first_unacked();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->seq, 2u);
}

TEST(SendBufferTest, RemoveAbandonsSegment) {
  SendBuffer buf;
  buf.add(make_outstanding(1));
  buf.add(make_outstanding(2));
  EXPECT_TRUE(buf.remove(1));
  EXPECT_FALSE(buf.remove(1));
  EXPECT_EQ(buf.inflight(), 1);
  EXPECT_EQ(buf.lowest_or(0), 2u);
}

// ------------------------------------------------------------ recv buf ----

RecvSegment rseg(Seq seq, std::uint32_t msg, std::uint16_t fi,
                 std::uint16_t fc, bool marked = true) {
  RecvSegment s;
  s.seq = seq;
  s.msg_id = msg;
  s.frag_index = fi;
  s.frag_count = fc;
  s.payload_bytes = 1000;
  s.marked = marked;
  s.ts_us = 5;
  return s;
}

TEST(RecvBufferTest, InOrderSingleFragmentMessages) {
  RecvBuffer buf;
  auto r1 = buf.on_data(rseg(1, 1, 0, 1), at_ms(1));
  ASSERT_EQ(r1.delivered.size(), 1u);
  EXPECT_EQ(r1.delivered[0].msg_id, 1u);
  EXPECT_EQ(r1.delivered[0].bytes, 1000);
  EXPECT_EQ(buf.cum(), 2u);
}

TEST(RecvBufferTest, MultiFragmentReassembly) {
  RecvBuffer buf;
  EXPECT_TRUE(buf.on_data(rseg(1, 1, 0, 3), at_ms(1)).delivered.empty());
  EXPECT_TRUE(buf.on_data(rseg(2, 1, 1, 3), at_ms(2)).delivered.empty());
  auto r = buf.on_data(rseg(3, 1, 2, 3), at_ms(3));
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(r.delivered[0].bytes, 3000);
}

TEST(RecvBufferTest, OutOfOrderBuffersAndEacks) {
  RecvBuffer buf;
  buf.on_data(rseg(3, 3, 0, 1), at_ms(1));
  buf.on_data(rseg(5, 5, 0, 1), at_ms(2));
  EXPECT_EQ(buf.cum(), 1u);
  EXPECT_EQ(buf.eacks(10), (iq::InlineVec<Seq, 16>{3, 5}));
  auto r = buf.on_data(rseg(1, 1, 0, 1), at_ms(3));
  EXPECT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(buf.cum(), 2u);
  r = buf.on_data(rseg(2, 2, 0, 1), at_ms(4));
  EXPECT_EQ(r.delivered.size(), 2u);  // 2 and 3 both complete
  EXPECT_EQ(buf.cum(), 4u);
}

TEST(RecvBufferTest, DuplicateDetection) {
  RecvBuffer buf;
  buf.on_data(rseg(1, 1, 0, 1), at_ms(1));
  auto r = buf.on_data(rseg(1, 1, 0, 1), at_ms(2));
  EXPECT_TRUE(r.duplicate);
  buf.on_data(rseg(3, 3, 0, 1), at_ms(3));
  auto r2 = buf.on_data(rseg(3, 3, 0, 1), at_ms(4));
  EXPECT_TRUE(r2.duplicate);
  EXPECT_EQ(buf.duplicates(), 2u);
}

TEST(RecvBufferTest, SkipAdvancesAndDropsMessage) {
  RecvBuffer buf;
  buf.on_data(rseg(2, 2, 0, 1), at_ms(1));  // out of order
  const std::vector<RecvBuffer::SkipInfo> skips{{1, 1, 1}};
  auto r = buf.on_skip(skips, at_ms(2));
  EXPECT_EQ(r.dropped_messages, 1u);
  ASSERT_EQ(r.delivered.size(), 1u);  // msg 2 now completes
  EXPECT_EQ(buf.cum(), 3u);
}

TEST(RecvBufferTest, FullySkippedMultiFragmentCountsOnce) {
  RecvBuffer buf;
  const std::vector<RecvBuffer::SkipInfo> skips{{1, 7, 3}, {2, 7, 3}, {3, 7, 3}};
  auto r = buf.on_skip(skips, at_ms(1));
  EXPECT_EQ(r.dropped_messages, 1u);
  EXPECT_EQ(buf.cum(), 4u);
  EXPECT_EQ(buf.dropped_messages(), 1u);
}

TEST(RecvBufferTest, PartiallySkippedMessageDropped) {
  RecvBuffer buf;
  buf.on_data(rseg(1, 1, 0, 3, false), at_ms(1));
  buf.on_data(rseg(3, 1, 2, 3, false), at_ms(2));
  const std::vector<RecvBuffer::SkipInfo> skips{{2, 1, 3}};
  auto r = buf.on_skip(skips, at_ms(3));
  EXPECT_EQ(r.dropped_messages, 1u);
  EXPECT_TRUE(r.delivered.empty());
  EXPECT_EQ(buf.cum(), 4u);
}

TEST(RecvBufferTest, LateArrivalSupersedesSkip) {
  RecvBuffer buf;
  // Skip announced for a seq still in flight, data arrives first... then
  // skip is ignored for already-received data.
  buf.on_data(rseg(1, 1, 0, 1), at_ms(1));
  const std::vector<RecvBuffer::SkipInfo> skips{{1, 1, 1}};
  auto r = buf.on_skip(skips, at_ms(2));
  EXPECT_EQ(r.dropped_messages, 0u);
  EXPECT_EQ(buf.delivered_messages(), 1u);
}

TEST(RecvBufferTest, RwndShrinksWithBuffering) {
  RecvBuffer buf(100);
  EXPECT_EQ(buf.rwnd(), 100u);
  buf.on_data(rseg(5, 5, 0, 1), at_ms(1));
  buf.on_data(rseg(6, 6, 0, 1), at_ms(2));
  EXPECT_EQ(buf.rwnd(), 98u);
}

// ---------------------------------------------------------------- budget --

TEST(SkipBudgetTest, ZeroToleranceNeverSkips) {
  SkipBudget b(0.0);
  b.on_message_offered();
  EXPECT_FALSE(b.may_skip_message());
}

TEST(SkipBudgetTest, EnforcesFraction) {
  SkipBudget b(0.4);
  for (int i = 0; i < 10; ++i) b.on_message_offered();
  // 4 of 10 allowed.
  EXPECT_TRUE(b.may_skip_message());
  b.on_message_skipped(1);
  b.on_message_skipped(2);
  b.on_message_skipped(3);
  b.on_message_skipped(4);
  EXPECT_FALSE(b.may_skip_message());
  EXPECT_DOUBLE_EQ(b.skipped_fraction(), 0.4);
  // More offered messages re-open the budget.
  for (int i = 0; i < 5; ++i) b.on_message_offered();
  EXPECT_TRUE(b.may_skip_message());
}

TEST(SkipBudgetTest, MessageCountedOnce) {
  SkipBudget b(1.0);
  b.on_message_offered();
  b.on_message_offered();
  EXPECT_TRUE(b.on_message_skipped(7));
  EXPECT_FALSE(b.on_message_skipped(7));
  EXPECT_EQ(b.skipped(), 1u);
  EXPECT_TRUE(b.is_skipped(7));
}

TEST(SkipBudgetTest, ToleranceExactlyMetAllowsTheBoundarySkip) {
  // may_skip asks "would one MORE skip stay within tolerance" — with the
  // comparison inclusive, the skip that lands exactly on the tolerance is
  // permitted and the one past it is not.
  SkipBudget b(0.5);
  for (int i = 0; i < 10; ++i) b.on_message_offered();
  for (std::uint32_t id = 1; id <= 4; ++id) b.on_message_skipped(id);
  // 5/10 == 0.5 exactly: still allowed.
  EXPECT_TRUE(b.may_skip_message());
  b.on_message_skipped(5);
  EXPECT_DOUBLE_EQ(b.skipped_fraction(), 0.5);
  // 6/10 would exceed it.
  EXPECT_FALSE(b.may_skip_message());
}

TEST(SkipBudgetTest, FragmentedMessageSkipsIdempotently) {
  // A message whose fragments are condemned one by one still spends only
  // one unit of budget, so a second message's skip is not starved.
  SkipBudget b(0.5);
  for (int i = 0; i < 4; ++i) b.on_message_offered();
  for (int frag = 0; frag < 5; ++frag) b.on_message_skipped(42);
  EXPECT_EQ(b.skipped(), 1u);
  EXPECT_TRUE(b.may_skip_message());
  EXPECT_TRUE(b.on_message_skipped(43));
  EXPECT_EQ(b.skipped(), 2u);
  EXPECT_FALSE(b.may_skip_message());
}

TEST(SkipBudgetTest, ToleranceLoweredMidStreamClosesTheBudget) {
  // The receiver can re-advertise a tighter tolerance at any time; messages
  // already skipped under the old tolerance stay counted, and no further
  // skips are allowed until enough new offers dilute the fraction.
  SkipBudget b(0.5);
  for (int i = 0; i < 10; ++i) b.on_message_offered();
  for (std::uint32_t id = 1; id <= 3; ++id) b.on_message_skipped(id);
  EXPECT_TRUE(b.may_skip_message());

  b.set_tolerance(0.2);
  EXPECT_EQ(b.tolerance(), 0.2);
  // 3/10 already exceeds the new 0.2 tolerance: budget is closed.
  EXPECT_FALSE(b.may_skip_message());
  EXPECT_DOUBLE_EQ(b.skipped_fraction(), 0.3);

  // 4/20 == 0.2: offering ten more re-opens exactly at the boundary.
  for (int i = 0; i < 10; ++i) b.on_message_offered();
  EXPECT_TRUE(b.may_skip_message());
  b.on_message_skipped(4);
  EXPECT_FALSE(b.may_skip_message());
}

}  // namespace
}  // namespace iq::rudp
