// Tests for the freelist object pool: block reuse, construction hygiene,
// and blocks that outlive the pool itself.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "iq/common/affinity.hpp"
#include "iq/net/packet.hpp"
#include "iq/net/pool.hpp"

namespace iq::net {
namespace {

struct Widget {
  int value = 7;
  std::string name = "fresh";
  std::vector<int> history;

  Widget() = default;
  explicit Widget(int v) : value(v) {}
};

TEST(ObjectPoolTest, FirstAllocationsAreFresh) {
  ObjectPool<Widget> pool;
  auto a = pool.make();
  auto b = pool.make();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.fresh_allocations, 2u);
  EXPECT_EQ(s.reuses, 0u);
  EXPECT_EQ(s.outstanding, 2u);
  EXPECT_EQ(s.free_blocks, 0u);
}

TEST(ObjectPoolTest, ReleasedBlocksAreReused) {
  ObjectPool<Widget> pool;
  pool.make();  // released immediately
  const PoolStats after_release = pool.stats();
  EXPECT_EQ(after_release.outstanding, 0u);
  EXPECT_EQ(after_release.free_blocks, 1u);

  auto again = pool.make();
  const PoolStats after_reuse = pool.stats();
  EXPECT_EQ(after_reuse.fresh_allocations, 1u);
  EXPECT_EQ(after_reuse.reuses, 1u);
  EXPECT_EQ(after_reuse.free_blocks, 0u);
}

// Objects handed out by the pool must be freshly constructed — mutations
// made through a previous tenancy of the same block must never leak.
TEST(ObjectPoolTest, ReusedObjectsCarryNoStaleState) {
  ObjectPool<Widget> pool;
  {
    auto w = pool.make();
    w->value = 999;
    w->name = "dirty dirty dirty dirty dirty dirty dirty";  // > SSO
    w->history.assign(1000, 42);
  }
  auto w = pool.make();
  EXPECT_EQ(pool.stats().reuses, 1u);  // same block...
  EXPECT_EQ(w->value, 7);              // ...fully reconstructed
  EXPECT_EQ(w->name, "fresh");
  EXPECT_TRUE(w->history.empty());
}

TEST(ObjectPoolTest, ForwardsConstructorArguments) {
  ObjectPool<Widget> pool;
  auto w = pool.make(123);
  EXPECT_EQ(w->value, 123);
}

// The deleter holds the arena alive, so objects may safely outlive the
// ObjectPool handle that made them.
TEST(ObjectPoolTest, BlocksMayOutliveThePool) {
  std::shared_ptr<Widget> survivor;
  {
    ObjectPool<Widget> pool;
    survivor = pool.make(55);
  }
  EXPECT_EQ(survivor->value, 55);
  survivor.reset();  // returns the block to the (still-alive) arena
}

TEST(ObjectPoolTest, ManyCyclesStabilizeOnOneBlock) {
  ObjectPool<Widget> pool;
  for (int i = 0; i < 1000; ++i) {
    auto w = pool.make(i);
    EXPECT_EQ(w->value, i);
  }
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.fresh_allocations, 1u);
  EXPECT_EQ(s.reuses, 999u);
  EXPECT_EQ(s.free_blocks, 1u);
}

TEST(ObjectPoolTest, PacketsPoolCleanly) {
  ObjectPool<Packet> pool;
  {
    auto p = pool.make();
    p->flow = 9;
    p->wire_bytes = 1500;
  }
  auto p = pool.make();
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(p->flow, 0u);
  EXPECT_EQ(p->wire_bytes, 0);
}

TEST(ObjectPoolTest, CrossThreadUseInsideStrictWindowAborts) {
  // Shard-safety by construction: inside a strict affinity window (what
  // ShardedSim holds while shards run), a pool belongs to the first thread
  // that touches it in that window. A second thread means pooled state
  // leaked across a shard boundary — fail loudly instead of racing.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ObjectPool<Widget> pool;
        iq::affinity::StrictAffinityGuard guard;
        auto a = pool.make();  // binds the pool to this thread
        std::thread other([&pool] { auto b = pool.make(); });
        other.join();
      },
      "two threads");
}

TEST(ObjectPoolTest, CrossThreadUseAcrossWindowsIsFine) {
  // A new strict window (new generation) rebinds ownership — pools may move
  // between worker threads across lockstep windows, just not within one.
  ObjectPool<Widget> pool;
  {
    iq::affinity::StrictAffinityGuard guard;
    auto a = pool.make();
  }
  std::thread other([&pool] {
    iq::affinity::StrictAffinityGuard guard;
    auto b = pool.make();
    EXPECT_EQ(b->value, 7);
  });
  other.join();
}

TEST(ObjectPoolTest, NoAffinityCheckOutsideStrictWindows) {
  // Outside strict windows (ordinary single-simulator runs) the pool keeps
  // its historical behavior: any thread may use it, sequentially.
  ObjectPool<Widget> pool;
  auto a = pool.make();
  std::thread other([&pool] { auto b = pool.make(); });
  other.join();
}

}  // namespace
}  // namespace iq::net
