// Flight recorder + invariant auditor (docs/AUDIT.md): ring mechanics and
// JSON rendering, the auditor's checks against hand-built event streams,
// a green-path audited transfer over a lossy wire, and the seeded-violation
// path (violation recorded, JSON dump written and parseable, no abort in
// non-fatal mode).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "iq/audit/audit.hpp"
#include "iq/audit/auditor.hpp"
#include "iq/audit/event.hpp"
#include "iq/audit/flight_recorder.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"

namespace iq::audit {
namespace {

Event make(EventType type, std::uint64_t seq = 0, std::uint64_t a = 0,
           std::uint64_t b = 0, std::uint64_t c = 0, std::uint64_t d = 0,
           double x = 0.0, double y = 0.0, std::uint8_t flag = 0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.a = a;
  e.b = b;
  e.c = c;
  e.d = d;
  e.x = x;
  e.y = y;
  e.flag = flag;
  return e;
}

// ------------------------------------------------------ flight recorder ---

TEST(FlightRecorderTest, HoldsAtMostCapacityOldestFirst) {
  FlightRecorder rec(16);
  EXPECT_EQ(rec.capacity(), 16u);
  EXPECT_EQ(rec.size(), 0u);

  for (std::uint64_t i = 1; i <= 40; ++i) {
    rec.record(make(EventType::Probe, i));
  }
  EXPECT_EQ(rec.size(), 16u);
  EXPECT_EQ(rec.total_recorded(), 40u);
  EXPECT_EQ(rec.overwritten(), 24u);

  // The window holds the newest 16, visited oldest -> newest.
  std::vector<std::uint64_t> seqs;
  rec.for_each([&](const Event& e) { seqs.push_back(e.seq); });
  ASSERT_EQ(seqs.size(), 16u);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], 25 + i);
  }

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(FlightRecorderTest, PartialFillVisitsInOrder) {
  FlightRecorder rec(64);
  for (std::uint64_t i = 1; i <= 5; ++i) rec.record(make(EventType::SegSent, i));
  std::vector<std::uint64_t> seqs;
  rec.for_each([&](const Event& e) { seqs.push_back(e.seq); });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(rec.overwritten(), 0u);
}

TEST(FlightRecorderTest, JsonCarriesEventsAndNullsNonFinite) {
  FlightRecorder rec(16);
  rec.record(make(EventType::CwndChange, 0, 0, 0, 0, 0,
                  std::nan(""), 1.0 / 0.0));
  rec.record(make(EventType::EpochClose, 3, 90, 10, 90, 10, 0.1, 0.1));
  const std::string json = rec.to_json();

  EXPECT_NE(json.find("\"capacity\":16"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cwnd-change\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch-close\""), std::string::npos) << json;
  // Non-finite doubles must render as null, same contract as JsonWriter.
  EXPECT_NE(json.find("null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

// -------------------------------------------------------------- auditor ---

TEST(AuditorTest, CleanStreamHasNoViolations) {
  InvariantAuditor aud;
  aud.set_cwnd_bounds({1.0, 4096.0});

  aud.on_event(make(EventType::SegSent, 1));
  aud.on_event(make(EventType::SegSent, 2));
  aud.on_event(make(EventType::SegSent, 3));
  aud.on_event(make(EventType::SegAcked, 1));
  aud.on_event(make(EventType::SegAcked, 2));
  aud.on_event(make(EventType::AckReceived, 3, /*newly_acked=*/2));
  aud.on_event(make(EventType::LossCondemned, 3));
  aud.on_event(make(EventType::SegRetransmit, 3));
  aud.on_event(make(EventType::SegAcked, 3));
  aud.on_event(make(EventType::AckReceived, 4, /*newly_acked=*/1));
  aud.on_event(make(EventType::CwndChange, 0, 0, 0, 0, 0, 2.0, 3.0,
                    static_cast<std::uint8_t>(CwndCause::Ack)));
  // acked=3, lost=1, ratio 0.25, lifetime totals match.
  aud.on_event(make(EventType::EpochClose, 1, 3, 1, 3, 1, 0.25, 0.25));
  aud.check_quiescent();

  EXPECT_TRUE(aud.violations().empty())
      << aud.violations().front().invariant << ": "
      << aud.violations().front().detail;
  EXPECT_GT(aud.checks_performed(), 0u);
  EXPECT_EQ(aud.live_segments(), 0u);
}

TEST(AuditorTest, DetectsNonMonotonicSend) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegSent, 5));
  aud.on_event(make(EventType::SegSent, 4));
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "seq-monotonicity");
}

TEST(AuditorTest, DetectsDoubleResolution) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegSent, 1));
  aud.on_event(make(EventType::SegAcked, 1));
  aud.on_event(make(EventType::SegSkipped, 1));
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "seg-exactly-once");
}

TEST(AuditorTest, DetectsAckForNeverSentSegment) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegAcked, 99));
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "seg-exactly-once");
}

TEST(AuditorTest, DetectsAckBatchMismatch) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegSent, 1));
  aud.on_event(make(EventType::SegAcked, 1));
  aud.on_event(make(EventType::AckReceived, 2, /*newly_acked=*/5));
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "ack-batch");
}

TEST(AuditorTest, DetectsEpochCountMismatchAndBadRatio) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegSent, 1));
  aud.on_event(make(EventType::SegAcked, 1));
  aud.on_event(make(EventType::AckReceived, 2, 1));
  // Claims acked=2 (stream saw 1) and a ratio inconsistent with its counts.
  aud.on_event(make(EventType::EpochClose, 1, 2, 0, 2, 0, 0.5, 0.5));
  ASSERT_GE(aud.violations().size(), 2u);
  EXPECT_EQ(aud.violations()[0].invariant, "epoch-conservation");
  EXPECT_EQ(aud.violations()[1].invariant, "epoch-ratio");
}

TEST(AuditorTest, DetectsEpochOrderingGap) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegSent, 1));
  aud.on_event(make(EventType::SegAcked, 1));
  aud.on_event(make(EventType::AckReceived, 2, 1));
  aud.on_event(make(EventType::EpochClose, 2, 1, 0, 1, 0, 0.0, 0.0));
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "epoch-ordering");
}

TEST(AuditorTest, DetectsLifetimeConservationBreak) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegSent, 1));
  aud.on_event(make(EventType::SegAcked, 1));
  aud.on_event(make(EventType::AckReceived, 2, 1));
  // Per-epoch counts right, lifetime totals wrong.
  aud.on_event(make(EventType::EpochClose, 1, 1, 0, 7, 0, 0.0, 0.0));
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "lifetime-conservation");
}

TEST(AuditorTest, EpochResetDiscardsFeedConservation) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegSent, 1));
  aud.on_event(make(EventType::SegSent, 2));
  aud.on_event(make(EventType::SegAcked, 1));
  aud.on_event(make(EventType::AckReceived, 2, 1));
  aud.on_event(make(EventType::LossCondemned, 2));
  // Blackout recovery: the pending acked=1/lost=1 are discarded...
  aud.on_event(make(EventType::EpochReset, 0, 1, 1, 1, 1));
  aud.on_event(make(EventType::SegRetransmit, 2));
  aud.on_event(make(EventType::SegAcked, 2));
  aud.on_event(make(EventType::AckReceived, 3, 1));
  // ...and the next epoch's lifetime totals must include them.
  aud.on_event(make(EventType::EpochClose, 1, 1, 0, 2, 1, 0.0, 0.0));
  EXPECT_TRUE(aud.violations().empty())
      << aud.violations().front().invariant << ": "
      << aud.violations().front().detail;
}

TEST(AuditorTest, DetectsCwndBoundEscapeAndNonFinite) {
  InvariantAuditor aud;
  aud.set_cwnd_bounds({1.0, 64.0});
  aud.on_event(make(EventType::CwndChange, 0, 0, 0, 0, 0, 10.0, 65.5,
                    static_cast<std::uint8_t>(CwndCause::Scale)));
  aud.on_event(make(EventType::CwndChange, 0, 0, 0, 0, 0, 10.0,
                    std::nan(""), static_cast<std::uint8_t>(CwndCause::Ack)));
  aud.on_event(make(EventType::CoordRescale, 0, 0, 0, 0, 0, -2.0, 0.0));
  ASSERT_EQ(aud.violations().size(), 3u);
  EXPECT_EQ(aud.violations()[0].invariant, "cwnd-bounds");
  EXPECT_EQ(aud.violations()[1].invariant, "cwnd-bounds");
  EXPECT_EQ(aud.violations()[2].invariant, "rescale-factor");
}

TEST(AuditorTest, QuiescenceFlagsUnresolvedSegments) {
  InvariantAuditor aud;
  aud.on_event(make(EventType::SegSent, 7));
  EXPECT_EQ(aud.live_segments(), 1u);
  aud.check_quiescent();
  ASSERT_FALSE(aud.violations().empty());
  EXPECT_EQ(aud.violations()[0].invariant, "seg-conservation");
}

// ------------------------------------------------- audited live transfer ---

// A real lossy transfer with the auditor armed end to end: drop, duplicate
// and reorder everything, then require a clean audit and full quiescence.
TEST(AuditLiveTest, LossyTransferAuditsClean) {
  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.drop_probability = 0.15;
  lcfg.duplicate_probability = 0.1;
  lcfg.reorder_jitter = Duration::millis(20);
  lcfg.seed = 424242;
  wire::LossyWirePair wire(sim, lcfg);

  rudp::RudpConfig cfg;
  rudp::RudpConnection snd(wire.a(), cfg, rudp::Role::Client);
  rudp::RudpConnection rcv(wire.b(), cfg, rudp::Role::Server);

  AuditConfig acfg;
  acfg.ring_capacity = 512;
  acfg.dump_on_violation = false;
  AuditContext* snd_audit = snd.enable_audit(acfg);
  AuditContext* rcv_audit = rcv.enable_audit(acfg);
  ASSERT_NE(snd_audit, nullptr);
  ASSERT_EQ(snd.audit(), snd_audit);

  int delivered = 0;
  rcv.set_message_handler([&](const rudp::DeliveredMessage&) { ++delivered; });
  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::seconds(30));
  ASSERT_TRUE(snd.established());

  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    rudp::MessageSpec spec;
    spec.bytes = 900 + 37 * (i % 50);
    ASSERT_FALSE(snd.send_message(spec).discarded);
    if (i % 5 == 0) {
      sim.run_until(sim.now() + Duration::millis(10));
    }
  }
  sim.run_until(sim.now() + Duration::seconds(600));
  ASSERT_TRUE(snd.send_idle());
  EXPECT_EQ(delivered, kMessages);

  snd_audit->check_quiescent();
  EXPECT_TRUE(snd_audit->violations().empty())
      << snd_audit->violations().front().invariant << ": "
      << snd_audit->violations().front().detail;
  EXPECT_TRUE(rcv_audit->violations().empty())
      << rcv_audit->violations().front().invariant << ": "
      << rcv_audit->violations().front().detail;

  // The stream really flowed through the recorder and the checks ran.
  EXPECT_GT(snd_audit->recorder().total_recorded(), 400u);
  EXPECT_GT(snd_audit->auditor().checks_performed(), 400u);

  // The loss monitor's lifetime identity, cross-checked directly.
  const rudp::LossMonitor& lm = snd.loss_monitor();
  EXPECT_GT(lm.total_lost(), 0u);  // the wire really dropped segments
  EXPECT_GT(lm.epochs_closed(), 0u);
}

// ------------------------------------------------------ seeded violation ---

// Inject a corrupted event through the live context: the auditor must trip,
// write a parseable JSON dump, invoke the handler, and (non-fatal) carry on.
TEST(AuditSeededViolationTest, BadEventTripsAuditorAndDumps) {
  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.seed = 7;
  wire::LossyWirePair wire(sim, lcfg);

  rudp::RudpConfig cfg;
  rudp::RudpConnection snd(wire.a(), cfg, rudp::Role::Client);
  rudp::RudpConnection rcv(wire.b(), cfg, rudp::Role::Server);

  AuditConfig acfg;
  acfg.dump_dir = ::testing::TempDir();
  acfg.fatal = false;  // record + dump, no abort: the test inspects both
  int handler_calls = 0;
  acfg.on_violation = [&](const Violation&) { ++handler_calls; };
  AuditContext* audit = snd.enable_audit(acfg);

  rcv.listen();
  snd.connect();
  sim.run_until(TimePoint::zero() + Duration::seconds(5));
  ASSERT_TRUE(snd.established());

  // Seeded violation: ack evidence for a sequence that was never sent.
  Event bad = make(EventType::SegAcked, 999'999);
  audit->record(bad);

  ASSERT_EQ(audit->violations().size(), 1u);
  EXPECT_EQ(audit->violations()[0].invariant, "seg-exactly-once");
  EXPECT_EQ(handler_calls, 1);

  const std::string path = audit->violation_dump_path();
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string dump = ss.str();
  in.close();
  std::remove(path.c_str());
  while (!dump.empty() && (dump.back() == '\n' || dump.back() == ' ')) {
    dump.pop_back();
  }

  // Structurally a JSON object carrying the ring and the violation.
  ASSERT_FALSE(dump.empty());
  EXPECT_EQ(dump.front(), '{');
  EXPECT_EQ(dump.back(), '}');
  EXPECT_NE(dump.find("\"violations\""), std::string::npos);
  EXPECT_NE(dump.find("\"seg-exactly-once\""), std::string::npos);
  EXPECT_NE(dump.find("\"events\""), std::string::npos);
  EXPECT_NE(dump.find("\"seg-acked\""), std::string::npos);
  // Balanced braces/brackets — cheap structural parse.
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < dump.size(); ++i) {
    const char ch = dump[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // Non-fatal mode: the connection keeps working after the violation.
  rudp::MessageSpec spec;
  spec.bytes = 500;
  ASSERT_FALSE(snd.send_message(spec).discarded);
  sim.run_until(sim.now() + Duration::seconds(30));
  EXPECT_TRUE(snd.send_idle());
}

}  // namespace
}  // namespace iq::audit
