// Tests for quality attributes: values, lists, store, threshold callbacks.

#include <gtest/gtest.h>

#include "iq/attr/callbacks.hpp"
#include "iq/attr/names.hpp"
#include "iq/attr/store.hpp"

namespace iq::attr {
namespace {

// ---------------------------------------------------------------- value ---

TEST(AttrValueTest, TypedAccessors) {
  EXPECT_EQ(AttrValue(std::int64_t{42}).as_int(), 42);
  EXPECT_EQ(AttrValue(2.5).as_double(), 2.5);
  EXPECT_EQ(AttrValue(true).as_bool(), true);
  EXPECT_EQ(AttrValue("hi").as_string(), "hi");
}

TEST(AttrValueTest, IntCoercesToDouble) {
  EXPECT_EQ(AttrValue(std::int64_t{7}).as_double(), 7.0);
  EXPECT_FALSE(AttrValue(7.0).as_int().has_value());
}

TEST(AttrValueTest, WrongTypeReturnsNullopt) {
  EXPECT_FALSE(AttrValue("s").as_int().has_value());
  EXPECT_FALSE(AttrValue(1.0).as_bool().has_value());
  EXPECT_FALSE(AttrValue(true).as_string().has_value());
}

TEST(AttrValueTest, EncodeDecodeRoundTrip) {
  for (const AttrValue& v :
       {AttrValue(std::int64_t{-5}), AttrValue(0.125), AttrValue(true),
        AttrValue(false), AttrValue("text with spaces"), AttrValue("")}) {
    ByteWriter w;
    v.encode(w);
    ByteReader r(w.data());
    auto back = AttrValue::decode(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

TEST(AttrValueTest, DecodeRejectsBadTag) {
  Bytes garbage{0xff, 0x00};
  ByteReader r(garbage);
  EXPECT_FALSE(AttrValue::decode(r).has_value());
}

// ----------------------------------------------------------------- list ---

TEST(AttrListTest, SetGetOverwrite) {
  AttrList l;
  l.set("a", 1.5);
  l.set("b", std::int64_t{2});
  EXPECT_EQ(l.get_double("a"), 1.5);
  l.set("a", 9.0);
  EXPECT_EQ(l.get_double("a"), 9.0);
  EXPECT_EQ(l.size(), 2u);
}

TEST(AttrListTest, InitializerList) {
  AttrList l{{kAdaptMark, 0.4}, {kAdaptWhen, kAdaptDeferred}};
  EXPECT_EQ(l.get_double(kAdaptMark), 0.4);
  EXPECT_EQ(l.get_int(kAdaptWhen), kAdaptDeferred);
}

TEST(AttrListTest, RemoveAndHas) {
  AttrList l;
  l.set("x", 1);
  EXPECT_TRUE(l.has("x"));
  EXPECT_TRUE(l.remove("x"));
  EXPECT_FALSE(l.has("x"));
  EXPECT_FALSE(l.remove("x"));
}

TEST(AttrListTest, MergeOverwrites) {
  AttrList a{{"k", 1.0}, {"only_a", 2.0}};
  AttrList b{{"k", 9.0}, {"only_b", 3.0}};
  a.merge(b);
  EXPECT_EQ(a.get_double("k"), 9.0);
  EXPECT_EQ(a.get_double("only_a"), 2.0);
  EXPECT_EQ(a.get_double("only_b"), 3.0);
}

TEST(AttrListTest, EncodeDecodeRoundTrip) {
  AttrList l{{"ratio", 0.3},
             {"count", std::int64_t{12}},
             {"on", true},
             {"name", "stream-7"}};
  ByteWriter w;
  l.encode(w);
  ByteReader r(w.data());
  auto back = AttrList::decode(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, l);
}

TEST(AttrListTest, EmptyListRoundTrip) {
  AttrList l;
  ByteWriter w;
  l.encode(w);
  ByteReader r(w.data());
  auto back = AttrList::decode(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(AttrListTest, DecodeRejectsTruncation) {
  AttrList l{{"key", 1.0}};
  ByteWriter w;
  l.encode(w);
  Bytes data = w.take();
  data.resize(data.size() - 3);
  ByteReader r(data);
  EXPECT_FALSE(AttrList::decode(r).has_value());
}

// ---------------------------------------------------------------- store ---

TEST(AttrStoreTest, UpdateAndQuery) {
  AttrStore s;
  s.update(kNetLossRatio, 0.12);
  EXPECT_EQ(s.query_double(kNetLossRatio), 0.12);
  EXPECT_FALSE(s.query("missing").has_value());
}

TEST(AttrStoreTest, SubscribersNotified) {
  AttrStore s;
  int all_count = 0, specific_count = 0;
  s.subscribe("", [&](const std::string&, const AttrValue&) { ++all_count; });
  s.subscribe(kNetRttMs,
              [&](const std::string&, const AttrValue&) { ++specific_count; });
  s.update(kNetLossRatio, 0.1);
  s.update(kNetRttMs, 31.0);
  EXPECT_EQ(all_count, 2);
  EXPECT_EQ(specific_count, 1);
}

TEST(AttrStoreTest, UnsubscribeStopsNotifications) {
  AttrStore s;
  int count = 0;
  auto id = s.subscribe("", [&](const std::string&, const AttrValue&) {
    ++count;
  });
  s.update("a", 1);
  EXPECT_TRUE(s.unsubscribe(id));
  s.update("a", 2);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(s.unsubscribe(id));
}

TEST(AttrStoreTest, SnapshotContainsEverything) {
  AttrStore s;
  s.update("a", 1);
  s.update("b", 2.0);
  const AttrList snap = s.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap.has("a"));
  EXPECT_TRUE(snap.has("b"));
}

TEST(AttrStoreTest, SubscriberMayUnsubscribeDuringCallback) {
  AttrStore s;
  AttrStore::SubscriptionId id = 0;
  int count = 0;
  id = s.subscribe("", [&](const std::string&, const AttrValue&) {
    ++count;
    s.unsubscribe(id);
  });
  s.update("x", 1);
  s.update("x", 2);
  EXPECT_EQ(count, 1);
}

// ------------------------------------------------------------ callbacks ---

AttrList empty_cb(const CallbackContext&) { return {}; }

TEST(CallbackRegistryTest, UpperFiresAtOrAboveThreshold) {
  CallbackRegistry reg;
  int upper = 0, lower = 0;
  reg.register_threshold(
      {.metric = kNetLossRatio, .upper = 0.3, .lower = 0.05},
      [&](const CallbackContext& ctx) {
        ++upper;
        EXPECT_EQ(ctx.kind, ThresholdKind::Upper);
        return AttrList{};
      },
      [&](const CallbackContext&) {
        ++lower;
        return AttrList{};
      });

  reg.on_metric(kNetLossRatio, 0.1, TimePoint::zero());   // between: none
  reg.on_metric(kNetLossRatio, 0.3, TimePoint::zero());   // upper (>=)
  reg.on_metric(kNetLossRatio, 0.5, TimePoint::zero());   // upper again
  reg.on_metric(kNetLossRatio, 0.05, TimePoint::zero());  // lower (<=)
  reg.on_metric(kNetLossRatio, 0.0, TimePoint::zero());   // lower again
  EXPECT_EQ(upper, 2);
  EXPECT_EQ(lower, 2);
}

TEST(CallbackRegistryTest, EdgeTriggeredFiresOncePerExcursion) {
  CallbackRegistry reg;
  int upper = 0;
  reg.register_threshold({.metric = kNetLossRatio,
                          .upper = 0.3,
                          .lower = 0.05,
                          .mode = FiringMode::EdgeTriggered},
                         [&](const CallbackContext&) {
                           ++upper;
                           return AttrList{};
                         },
                         empty_cb);
  reg.on_metric(kNetLossRatio, 0.4, TimePoint::zero());
  reg.on_metric(kNetLossRatio, 0.5, TimePoint::zero());  // still high: no fire
  reg.on_metric(kNetLossRatio, 0.1, TimePoint::zero());  // back to normal
  reg.on_metric(kNetLossRatio, 0.4, TimePoint::zero());  // new excursion
  EXPECT_EQ(upper, 2);
}

TEST(CallbackRegistryTest, OtherMetricsIgnored) {
  CallbackRegistry reg;
  int fires = 0;
  reg.register_threshold({.metric = kNetLossRatio, .upper = 0.1, .lower = 0.0},
                         [&](const CallbackContext&) {
                           ++fires;
                           return AttrList{};
                         },
                         empty_cb);
  reg.on_metric(kNetRttMs, 500.0, TimePoint::zero());
  EXPECT_EQ(fires, 0);
}

TEST(CallbackRegistryTest, ResultsReachConsumer) {
  CallbackRegistry reg;
  AttrList seen;
  reg.set_result_consumer(
      [&](const AttrList& result, const CallbackContext&) { seen = result; });
  reg.register_threshold({.metric = kNetLossRatio, .upper = 0.2, .lower = 0.0},
                         [](const CallbackContext& ctx) {
                           AttrList out;
                           out.set(kAdaptMark, ctx.value);
                           return out;
                         },
                         empty_cb);
  reg.on_metric(kNetLossRatio, 0.35, TimePoint::zero());
  EXPECT_EQ(seen.get_double(kAdaptMark), 0.35);
}

TEST(CallbackRegistryTest, EmptyResultNotForwarded) {
  CallbackRegistry reg;
  int consumed = 0;
  reg.set_result_consumer(
      [&](const AttrList&, const CallbackContext&) { ++consumed; });
  reg.register_threshold({.metric = kNetLossRatio, .upper = 0.2, .lower = 0.0},
                         empty_cb, empty_cb);
  reg.on_metric(kNetLossRatio, 0.9, TimePoint::zero());
  EXPECT_EQ(consumed, 0);
}

TEST(CallbackRegistryTest, UnregisterStopsFiring) {
  CallbackRegistry reg;
  int fires = 0;
  auto id = reg.register_threshold(
      {.metric = kNetLossRatio, .upper = 0.2, .lower = 0.0},
      [&](const CallbackContext&) {
        ++fires;
        return AttrList{};
      },
      empty_cb);
  reg.on_metric(kNetLossRatio, 0.5, TimePoint::zero());
  EXPECT_TRUE(reg.unregister(id));
  reg.on_metric(kNetLossRatio, 0.5, TimePoint::zero());
  EXPECT_EQ(fires, 1);
}

}  // namespace
}  // namespace iq::attr
