// Fault-matrix acceptance tests — the issue's survivability criteria:
//   * a 5 s blackout is survivable: no false Failed, and the congestion
//     window re-opens to within 20% of its pre-blackout value within 10
//     simulated seconds of restoration (loss-epoch reset at work);
//   * every injected bit-corrupted segment is rejected by the checksum —
//     zero corrupted payloads delivered;
//   * ack-path loss (Dumbbell reverse direction) does not wedge transfers;
//   * Gilbert–Elliott burst phases preserve conservation and ordering.
//
// scripts/ci.sh --chaos sweeps these (plus the chaos soak) across fixed
// seeds in default and sanitizer builds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "iq/audit/audit.hpp"
#include "iq/cm/manager.hpp"
#include "iq/fault/injector.hpp"
#include "iq/fault/plan.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"
#include "iq/wire/sim_wire.hpp"

namespace iq::rudp {
namespace {

struct Rig {
  sim::Simulator sim;
  wire::LossyWirePair wire;
  RudpConnection sender;
  RudpConnection receiver;
  audit::AuditContext* snd_audit;
  audit::AuditContext* rcv_audit;
  std::vector<DeliveredMessage> delivered;
  int failures = 0;

  explicit Rig(const wire::LossyConfig& lcfg, RudpConfig scfg = {},
               RudpConfig rcfg = {})
      : wire(sim, lcfg),
        sender(wire.a(), scfg, Role::Client),
        receiver(wire.b(), rcfg, Role::Server) {
    // Every fault scenario runs with the invariant auditor armed; the
    // destructor requires a clean audit on both endpoints.
    audit::AuditConfig acfg;
    acfg.dump_on_violation = false;
    snd_audit = sender.enable_audit(acfg);
    rcv_audit = receiver.enable_audit(acfg);
    receiver.set_message_handler(
        [this](const DeliveredMessage& m) { delivered.push_back(m); });
    sender.set_error_handler([this](FailureReason) { ++failures; });
    receiver.listen();
    sender.connect();
  }

  ~Rig() {
    // A drained sender must have resolved every transmitted segment; a
    // failed or still-busy one legitimately strands some, so only then is
    // the quiescence check skipped.
    if (!sender.failed() && sender.send_idle()) snd_audit->check_quiescent();
    EXPECT_TRUE(snd_audit->violations().empty())
        << snd_audit->violations().front().invariant << ": "
        << snd_audit->violations().front().detail;
    EXPECT_TRUE(rcv_audit->violations().empty())
        << rcv_audit->violations().front().invariant << ": "
        << rcv_audit->violations().front().detail;
  }

  void run_ms(std::int64_t ms) {
    sim.run_until(sim.now() + Duration::millis(ms));
  }
};

// --------------------------------------------------- 5 s blackout window --

TEST(FaultMatrixTest, FiveSecondBlackoutSurvivesAndCwndRecovers) {
  wire::LossyConfig lcfg;
  Rig rig(lcfg);
  fault::FaultInjector injector(rig.sim);
  fault::FaultPlan plan;
  plan.blackout(Duration::seconds(10), Duration::seconds(5),
                injector.add_target(rig.wire));
  injector.arm(plan);

  // Steady traffic for the whole run: 20 msg/s of 8 kB (6 fragments) — the
  // bursts exceed the initial window, so cwnd actually opens up (window
  // validation freezes an application-limited sender's window).
  sim::PeriodicTask traffic(rig.sim, Duration::millis(50), [&] {
    if (rig.sender.established()) rig.sender.send_message({.bytes = 8000});
  });
  traffic.start();

  rig.run_ms(9'900);
  ASSERT_TRUE(rig.sender.established());
  const double cwnd_before = rig.sender.congestion().cwnd();
  ASSERT_GT(cwnd_before, 2.0);  // warmed up past the initial window

  rig.run_ms(5'200);  // ride out the blackout (10 s .. 15 s)
  EXPECT_FALSE(rig.sender.failed()) << "false Failed during 5 s blackout";
  EXPECT_EQ(rig.failures, 0);

  // Within 10 s of restoration the window must re-open to >= 80% of its
  // pre-blackout value. Sample as we go — recovery then further growth.
  double cwnd_peak = 0.0;
  for (int i = 0; i < 100; ++i) {
    rig.run_ms(100);
    cwnd_peak = std::max(cwnd_peak, rig.sender.congestion().cwnd());
  }
  traffic.stop();
  EXPECT_FALSE(rig.sender.failed());
  EXPECT_GE(cwnd_peak, 0.8 * cwnd_before)
      << "cwnd " << cwnd_peak << " never re-opened to 80% of "
      << cwnd_before;
  EXPECT_GE(rig.sender.stats().blackout_recoveries, 1u);

  // Drain and check conservation: nothing offered was lost for good.
  rig.run_ms(30'000);
  EXPECT_EQ(rig.delivered.size() + rig.receiver.stats().messages_dropped,
            rig.sender.stats().messages_offered);
}

// ------------------------------------------------------------ corruption --

TEST(FaultMatrixTest, EveryCorruptedSegmentRejectedByChecksum) {
  wire::LossyConfig lcfg;
  lcfg.seed = 21;
  Rig rig(lcfg);
  fault::FaultInjector injector(rig.sim);
  fault::FaultPlan plan;
  plan.corruption(Duration::seconds(1), 0.05, injector.add_target(rig.wire));
  injector.arm(plan);

  rig.run_ms(500);
  ASSERT_TRUE(rig.sender.established());
  const int kMessages = 300;
  std::vector<std::int64_t> offered_bytes;
  for (int i = 0; i < kMessages; ++i) {
    const std::int64_t bytes = 200 + 13 * i % 3000;
    offered_bytes.push_back(bytes);
    rig.sender.send_message({.bytes = bytes});
    rig.run_ms(20);
  }
  rig.run_ms(60'000);

  // Corruption actually happened, and every corrupted segment was rejected
  // at the wire — none reached a protocol engine.
  EXPECT_GT(rig.wire.corrupt_deliveries(), 0u);
  EXPECT_EQ(rig.wire.a().checksum_rejects() + rig.wire.b().checksum_rejects(),
            rig.wire.corrupt_deliveries());
  // Both endpoints counted their rejects into protocol stats.
  EXPECT_EQ(rig.sender.stats().checksum_rejects +
                rig.receiver.stats().checksum_rejects,
            rig.wire.corrupt_deliveries());

  // Zero corrupted payloads delivered: everything that arrived is exactly
  // what was offered, in order (retransmission repaired the rejects).
  ASSERT_EQ(rig.delivered.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(rig.delivered[static_cast<std::size_t>(i)].bytes,
              offered_bytes[static_cast<std::size_t>(i)])
        << "message " << i;
  }
  EXPECT_FALSE(rig.sender.failed());
}

// --------------------------------------------------------------- ack loss --

TEST(FaultMatrixTest, ReversePathAckLossDoesNotWedgeTransfer) {
  sim::Simulator sim;
  net::Network network(sim);
  net::DumbbellConfig dcfg;
  dcfg.pairs = 1;
  dcfg.reverse_drop_probability = 0.2;  // every 5th ack dies
  dcfg.reverse_drop_seed = 17;
  net::Dumbbell db(network, dcfg);
  wire::SimWire wa(network, {db.left(0).id(), 10}, {db.right(0).id(), 10}, 1);
  wire::SimWire wb(network, {db.right(0).id(), 10}, {db.left(0).id(), 10}, 1);

  RudpConnection snd(wa, {}, Role::Client);
  RudpConnection rcv(wb, {}, Role::Server);
  std::vector<DeliveredMessage> delivered;
  rcv.set_message_handler(
      [&](const DeliveredMessage& m) { delivered.push_back(m); });
  rcv.listen();
  snd.connect();
  sim.run_until(sim.now() + Duration::seconds(2));
  ASSERT_TRUE(snd.established());

  const int kMessages = 60;
  for (int i = 0; i < kMessages; ++i) {
    snd.send_message({.bytes = 3000});
    sim.run_until(sim.now() + Duration::millis(50));
  }
  sim.run_until(sim.now() + Duration::seconds(60));

  EXPECT_GT(db.bottleneck_reverse().random_drops(), 0u);
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(kMessages));
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    EXPECT_LT(delivered[i - 1].msg_id, delivered[i].msg_id);
  }
  EXPECT_FALSE(snd.failed());
  EXPECT_TRUE(snd.send_idle());
}

// ------------------------------------------------------------- burst loss --

TEST(FaultMatrixTest, BurstLossPreservesConservationAndOrdering) {
  wire::LossyConfig lcfg;
  lcfg.seed = 31;
  Rig rig(lcfg);
  fault::FaultInjector injector(rig.sim);
  fault::GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.25;
  ge.loss_bad = 0.7;
  ge.seed = 11;
  fault::FaultPlan plan;
  const int target = injector.add_target(rig.wire);
  plan.burst_loss(Duration::seconds(2), Duration::seconds(8), ge, target)
      .burst_loss(Duration::seconds(20), Duration::seconds(8), ge, target);
  injector.arm(plan);

  rig.run_ms(500);
  ASSERT_TRUE(rig.sender.established());
  const int kMessages = 150;
  for (int i = 0; i < kMessages; ++i) {
    rig.sender.send_message({.bytes = 2000});
    rig.run_ms(200);
  }
  rig.run_ms(120'000);

  EXPECT_GT(rig.wire.burst_drops(), 0u);
  EXPECT_FALSE(rig.sender.failed()) << "burst phases must be survivable";
  ASSERT_EQ(rig.delivered.size(), static_cast<std::size_t>(kMessages));
  for (std::size_t i = 1; i < rig.delivered.size(); ++i) {
    EXPECT_LT(rig.delivered[i - 1].msg_id, rig.delivered[i].msg_id);
  }
  EXPECT_TRUE(rig.sender.send_idle());
}

// ------------------------------------------ shared-destination macro-flow --

// Three flows to one destination share a CongestionManager (docs/CM.md)
// through the same fault plan: the aggregate must ride out the fault like a
// single connection would, no flow may starve, and the CM audit invariants
// (share conservation, anti-starvation, loss dedup) must hold throughout.
struct CmRig {
  static constexpr int kFlows = 3;

  sim::Simulator sim;
  cm::CongestionManager mgr;  // declared first: destroyed after the flows
  std::vector<std::unique_ptr<wire::LossyWirePair>> wires;
  std::vector<std::unique_ptr<RudpConnection>> senders;
  std::vector<std::unique_ptr<RudpConnection>> receivers;
  std::vector<cm::FlowHandle*> flows;
  std::vector<std::int64_t> delivered_bytes = std::vector<std::int64_t>(kFlows);
  int failures = 0;

  static cm::CmConfig cm_config() {
    cm::CmConfig mcfg;
    mcfg.aggregate.initial_cwnd = 6.0;  // the whole macro-flow's start
    return mcfg;
  }

  explicit CmRig(const wire::LossyConfig& lcfg) : mgr(cm_config()) {
    audit::AuditConfig acfg;
    acfg.dump_on_violation = false;
    mgr.enable_audit(acfg);
    for (int i = 0; i < kFlows; ++i) {
      wires.push_back(std::make_unique<wire::LossyWirePair>(sim, lcfg));
      RudpConfig cfg;
      cfg.conn_id = static_cast<std::uint32_t>(i + 1);
      senders.push_back(std::make_unique<RudpConnection>(
          wires.back()->a(), cfg, Role::Client));
      receivers.push_back(std::make_unique<RudpConnection>(
          wires.back()->b(), cfg, Role::Server));
      senders.back()->enable_audit(acfg);
      receivers.back()->enable_audit(acfg);
      receivers.back()->set_message_handler(
          [this, i](const DeliveredMessage& m) { delivered_bytes[static_cast<std::size_t>(i)] += m.bytes; });
      senders.back()->set_error_handler([this](FailureReason) { ++failures; });
      flows.push_back(mgr.register_flow());
      RudpConnection* snd = senders.back().get();
      flows.back()->set_share_listener([snd] { snd->window_updated(); });
      snd->set_external_congestion(flows.back());
      receivers.back()->listen();
      snd->connect();
    }
  }

  ~CmRig() {
    EXPECT_TRUE(audits_clean());
    for (int i = 0; i < kFlows; ++i) {
      senders[static_cast<std::size_t>(i)]->set_external_congestion(nullptr);
      mgr.unregister_flow(flows[static_cast<std::size_t>(i)]);
    }
  }

  bool audits_clean() const {
    bool clean = mgr.auditor()->violations().empty();
    if (!clean) {
      ADD_FAILURE() << "cm audit: "
                    << mgr.auditor()->violations().front().invariant << ": "
                    << mgr.auditor()->violations().front().detail;
    }
    for (const auto& s : senders) {
      if (s->audit() != nullptr && !s->audit()->violations().empty()) {
        ADD_FAILURE() << "conn audit: "
                      << s->audit()->violations().front().invariant;
        clean = false;
      }
    }
    return clean;
  }

  void run_ms(std::int64_t ms) {
    sim.run_until(sim.now() + Duration::millis(ms));
  }

  std::int64_t total_delivered() const {
    std::int64_t total = 0;
    for (std::int64_t b : delivered_bytes) total += b;
    return total;
  }
};

TEST(FaultMatrixTest, SharedDestinationBlackoutNoStarvation) {
  wire::LossyConfig lcfg;
  CmRig rig(lcfg);
  fault::FaultInjector injector(rig.sim);
  fault::FaultPlan plan;
  // One path, one blackout: all three wires go dark together (10 s .. 15 s).
  for (auto& w : rig.wires) {
    plan.blackout(Duration::seconds(10), Duration::seconds(5),
                  injector.add_target(*w));
  }
  injector.arm(plan);

  std::vector<std::unique_ptr<sim::PeriodicTask>> traffic;
  traffic.reserve(CmRig::kFlows);
  for (int i = 0; i < CmRig::kFlows; ++i) {
    auto* snd = rig.senders[static_cast<std::size_t>(i)].get();
    traffic.push_back(std::make_unique<sim::PeriodicTask>(
        rig.sim, Duration::millis(50), [snd] {
          if (snd->established()) snd->send_message({.bytes = 6000});
        }));
    traffic.back()->start();
  }

  rig.run_ms(9'900);
  for (auto& s : rig.senders) ASSERT_TRUE(s->established());
  const double aggregate_before = rig.mgr.aggregate_cwnd();
  ASSERT_GT(aggregate_before, 4.0);  // the macro-flow warmed past its start

  rig.run_ms(5'200);  // ride out the blackout
  EXPECT_EQ(rig.failures, 0) << "false Failed during shared blackout";

  // Aggregate recovery: within 10 s of restoration the macro-flow window
  // must re-open to >= 80% of its pre-blackout value.
  double aggregate_peak = 0.0;
  for (int i = 0; i < 100; ++i) {
    rig.run_ms(100);
    aggregate_peak = std::max(aggregate_peak, rig.mgr.aggregate_cwnd());
  }
  for (auto& t : traffic) t->stop();
  rig.run_ms(10'000);  // drain

  EXPECT_GE(aggregate_peak, 0.8 * aggregate_before)
      << "aggregate " << aggregate_peak << " never re-opened to 80% of "
      << aggregate_before;

  // No starvation: every equal-weight flow moved a meaningful slice of the
  // total (a starved flow would sit near zero).
  const std::int64_t total = rig.total_delivered();
  ASSERT_GT(total, 0);
  for (int i = 0; i < CmRig::kFlows; ++i) {
    EXPECT_GE(rig.delivered_bytes[static_cast<std::size_t>(i)],
              total / (CmRig::kFlows * 10))
        << "flow " << i << " starved";
  }

  // Loss dedup accounting stayed consistent through the fault.
  const cm::CmStats& st = rig.mgr.stats();
  EXPECT_EQ(st.losses_reported, st.losses_penalized + st.losses_deduped);
  EXPECT_EQ(st.timeouts_reported, st.timeouts_penalized + st.timeouts_deduped);
  EXPECT_GT(st.timeouts_reported, 0u);  // the blackout was actually felt
}

TEST(FaultMatrixTest, SharedDestinationBurstLossSurvives) {
  wire::LossyConfig lcfg;
  lcfg.seed = 47;
  CmRig rig(lcfg);
  fault::FaultInjector injector(rig.sim);
  fault::GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.25;
  ge.loss_bad = 0.7;
  ge.seed = 13;
  fault::FaultPlan plan;
  for (auto& w : rig.wires) {
    plan.burst_loss(Duration::seconds(2), Duration::seconds(10), ge,
                    injector.add_target(*w));
  }
  injector.arm(plan);

  rig.run_ms(500);
  const int kMessages = 80;
  for (int i = 0; i < kMessages; ++i) {
    for (auto& s : rig.senders) s->send_message({.bytes = 2000});
    rig.run_ms(150);
  }
  rig.run_ms(120'000);

  std::uint64_t burst_drops = 0;
  for (auto& w : rig.wires) burst_drops += w->burst_drops();
  EXPECT_GT(burst_drops, 0u);
  EXPECT_EQ(rig.failures, 0) << "burst phases must be survivable";
  for (int i = 0; i < CmRig::kFlows; ++i) {
    auto& s = rig.senders[static_cast<std::size_t>(i)];
    EXPECT_FALSE(s->failed()) << "flow " << i;
    EXPECT_TRUE(s->send_idle()) << "flow " << i;
    EXPECT_EQ(rig.delivered_bytes[static_cast<std::size_t>(i)],
              2000 * kMessages)
        << "flow " << i << " lost data";
  }
  const cm::CmStats& st = rig.mgr.stats();
  EXPECT_EQ(st.losses_reported, st.losses_penalized + st.losses_deduped);
  EXPECT_GT(st.losses_deduped + st.timeouts_deduped, 0u)
      << "shared-path events were never deduped across flows";
}

}  // namespace
}  // namespace iq::rudp
