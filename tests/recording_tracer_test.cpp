// Tests for the per-packet RecordingTracer.

#include <gtest/gtest.h>

#include "iq/net/dumbbell.hpp"
#include "iq/net/recording_tracer.hpp"
#include "iq/net/sinks.hpp"

namespace iq::net {
namespace {

struct Rig {
  sim::Simulator sim;
  Network net{sim};
  RecordingTracer tracer{sim};
  Dumbbell db{net, {.pairs = 1}};
  CountingSink sink;

  Rig() {
    net.set_tracer(&tracer);
    db.right(0).bind(7, &sink);
  }

  void send(std::int64_t bytes, std::uint32_t flow) {
    db.left(0).send(net.make_packet({db.left(0).id(), 7},
                                    {db.right(0).id(), 7}, flow, bytes));
  }
};

TEST(RecordingTracerTest, RecordsTransmitAndDeliver) {
  Rig r;
  r.send(500, 1);
  r.sim.run();
  // 3 hops: 3 transmits + 3 delivers.
  EXPECT_EQ(r.tracer.filter(RecordingTracer::EventKind::Transmit).size(), 3u);
  EXPECT_EQ(r.tracer.filter(RecordingTracer::EventKind::Deliver).size(), 3u);
  EXPECT_TRUE(r.tracer.filter(RecordingTracer::EventKind::Drop).empty());
}

TEST(RecordingTracerTest, FlowFilter) {
  Rig r;
  r.send(500, 1);
  r.send(500, 2);
  r.send(500, 2);
  r.sim.run();
  EXPECT_EQ(r.tracer.filter(RecordingTracer::EventKind::Transmit, 1).size(),
            3u);
  EXPECT_EQ(r.tracer.filter(RecordingTracer::EventKind::Transmit, 2).size(),
            6u);
}

TEST(RecordingTracerTest, TimestampsMonotone) {
  Rig r;
  for (int i = 0; i < 20; ++i) r.send(1400, 1);
  r.sim.run();
  const auto& evs = r.tracer.events();
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_GE(evs[i].at, evs[i - 1].at);
  }
}

TEST(RecordingTracerTest, DropsRecordedOnOverflow) {
  sim::Simulator sim;
  Network net(sim);
  RecordingTracer tracer(sim);
  DumbbellConfig cfg{.pairs = 1};
  cfg.bottleneck_queue_bytes = 2 * 1500;  // tiny queue
  Dumbbell db(net, cfg);
  net.set_tracer(&tracer);
  CountingSink sink;
  db.right(0).bind(7, &sink);
  for (int i = 0; i < 50; ++i) {
    db.left(0).send(net.make_packet({db.left(0).id(), 7},
                                    {db.right(0).id(), 7}, 1, 1400));
  }
  sim.run();
  EXPECT_GT(tracer.filter(RecordingTracer::EventKind::Drop).size(), 0u);
}

TEST(RecordingTracerTest, CapacityBoundsMemory) {
  sim::Simulator sim;
  Network net(sim);
  RecordingTracer tracer(sim, /*capacity=*/100);
  Dumbbell db(net, {.pairs = 1});
  net.set_tracer(&tracer);
  CountingSink sink;
  db.right(0).bind(7, &sink);
  for (int i = 0; i < 200; ++i) {
    db.left(0).send(net.make_packet({db.left(0).id(), 7},
                                    {db.right(0).id(), 7}, 1, 100));
  }
  sim.run();
  EXPECT_LE(tracer.events().size(), 100u);
  EXPECT_GT(tracer.discarded(), 0u);
}

TEST(RecordingTracerTest, CsvHasHeaderAndRows) {
  Rig r;
  r.send(500, 9);
  r.sim.run();
  const std::string csv = r.tracer.to_csv();
  EXPECT_NE(csv.find("time_s,kind,flow,packet,bytes,link"),
            std::string::npos);
  EXPECT_NE(csv.find(",tx,9,"), std::string::npos);
  EXPECT_NE(csv.find(",rx,9,"), std::string::npos);
}

TEST(TextTracerTest, CollectsFormattedLines) {
  sim::Simulator sim;
  Network net(sim);
  TextTracer tracer;
  Dumbbell db(net, {.pairs = 1});
  net.set_tracer(&tracer);
  CountingSink sink;
  db.right(0).bind(7, &sink);
  db.left(0).send(net.make_packet({db.left(0).id(), 7},
                                  {db.right(0).id(), 7}, 3, 500));
  sim.run();
  // 3 hops: tx + rx per hop.
  ASSERT_EQ(tracer.lines().size(), 6u);
  const std::string& first = tracer.lines().front();
  EXPECT_NE(first.find(" tx "), std::string::npos);
  EXPECT_NE(first.find("flow=3"), std::string::npos);
  EXPECT_NE(first.find("500B"), std::string::npos);
}

TEST(TextTracerTest, CapacityBoundsLines) {
  sim::Simulator sim;
  Network net(sim);
  TextTracer tracer(/*capacity=*/10);
  Dumbbell db(net, {.pairs = 1});
  net.set_tracer(&tracer);
  CountingSink sink;
  db.right(0).bind(7, &sink);
  for (int i = 0; i < 20; ++i) {
    db.left(0).send(net.make_packet({db.left(0).id(), 7},
                                    {db.right(0).id(), 7}, 1, 100));
  }
  sim.run();
  EXPECT_EQ(tracer.lines().size(), 10u);
  EXPECT_GT(tracer.discarded(), 0u);
}

// Tracers that don't opt into text (the normal case) must not receive
// formatted lines — the links skip the string work entirely.
TEST(TextTracerTest, NonTextTracersGetNoLines) {
  struct Spy final : Tracer {
    int text_calls = 0;
    void on_transmit(const Link&, const Packet&) override {}
    void on_drop(const Link&, const Packet&) override {}
    void on_deliver(const Link&, const Packet&) override {}
    void on_text(const Link&, const std::string&) override { ++text_calls; }
    // wants_text() deliberately left at the default (false).
  };
  sim::Simulator sim;
  Network net(sim);
  Spy spy;
  Dumbbell db(net, {.pairs = 1});
  net.set_tracer(&spy);
  CountingSink sink;
  db.right(0).bind(7, &sink);
  db.left(0).send(net.make_packet({db.left(0).id(), 7},
                                  {db.right(0).id(), 7}, 1, 500));
  sim.run();
  EXPECT_EQ(spy.text_calls, 0);
}

}  // namespace
}  // namespace iq::net
