// InlineVec tests: targeted edge cases (spill boundary, aliasing insert,
// moves) plus a randomized property test that replays the same operation
// stream against std::vector and demands identical observable state.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "iq/common/inline_vec.hpp"
#include "iq/common/rng.hpp"

namespace iq {
namespace {

TEST(InlineVecTest, StartsInlineAndSpillsAtCapacity) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.spilled());
  v.push_back(4);  // fifth element crosses the inline boundary
  EXPECT_TRUE(v.spilled());
  EXPECT_GE(v.capacity(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(InlineVecTest, PushBackOfOwnElementSurvivesGrowth) {
  // The classic aliasing bug: push_back(v[0]) while the push reallocates.
  InlineVec<std::string, 2> v;
  v.push_back(std::string(40, 'a'));  // heap-allocated string
  v.push_back(std::string(40, 'b'));
  v.push_back(v[0]);  // growth relocates storage mid-call
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], std::string(40, 'a'));
}

TEST(InlineVecTest, InsertOwnElementSurvivesShift) {
  InlineVec<std::string, 4> v;
  v.push_back("aaaa");
  v.push_back("bbbb");
  v.push_back("cccc");
  // insert takes its argument by value, so inserting an element of the
  // same vector is safe even though the shift moves it.
  v.insert(v.begin(), v.back());
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "cccc");
  EXPECT_EQ(v[3], "cccc");
}

TEST(InlineVecTest, MoveStealsHeapBlockAndEmptiesSource) {
  InlineVec<std::string, 2> v;
  for (int i = 0; i < 8; ++i) v.push_back(std::string(30, 'x'));
  ASSERT_TRUE(v.spilled());
  const std::string* block = v.data();
  InlineVec<std::string, 2> w = std::move(v);
  EXPECT_EQ(w.data(), block);  // pointer steal, not element copies
  EXPECT_EQ(w.size(), 8u);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(InlineVecTest, MoveOfInlineVectorMovesElements) {
  InlineVec<std::string, 4> v;
  v.push_back("hello");
  InlineVec<std::string, 4> w = std::move(v);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], "hello");
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(InlineVecTest, EqualityAndInitializerList) {
  const InlineVec<int, 3> a{1, 2, 3, 4};
  const InlineVec<int, 3> b{1, 2, 3, 4};
  const InlineVec<int, 3> c{1, 2, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.spilled());
  EXPECT_FALSE(c.spilled());
}

TEST(InlineVecTest, SpanConversion) {
  InlineVec<int, 4> v{10, 20, 30};
  std::span<const int> s = v;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], 20);
}

// ---------------------------------------------------------------------------
// Property test: random op streams against std::vector as the reference.

template <typename T>
struct ValueGen;

template <>
struct ValueGen<int> {
  static int make(Rng& rng) {
    return static_cast<int>(rng.uniform_int(-1000, 1000));
  }
};

template <>
struct ValueGen<std::string> {
  static std::string make(Rng& rng) {
    // Mix SSO-sized and heap-backed strings so element lifetime bugs show.
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 40));
    return std::string(len, static_cast<char>('a' + rng.uniform_int(0, 25)));
  }
};

template <typename T, std::size_t N>
void check_same(const InlineVec<T, N>& v, const std::vector<T>& ref) {
  ASSERT_EQ(v.size(), ref.size());
  ASSERT_GE(v.capacity(), v.size());
  ASSERT_EQ(v.spilled(), v.capacity() > N);
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(v[i], ref[i]);
  if (!ref.empty()) {
    ASSERT_EQ(v.front(), ref.front());
    ASSERT_EQ(v.back(), ref.back());
  }
}

template <typename T, std::size_t N>
void run_property(std::uint64_t seed) {
  Rng rng(seed);
  InlineVec<T, N> v;
  std::vector<T> ref;
  for (int step = 0; step < 1500; ++step) {
    const auto op = rng.uniform_int(0, 11);
    switch (op) {
      case 0:
      case 1:
      case 2: {  // push_back (weighted: growth is the interesting path)
        T x = ValueGen<T>::make(rng);
        v.push_back(x);
        ref.push_back(std::move(x));
        break;
      }
      case 3: {  // emplace_back
        T x = ValueGen<T>::make(rng);
        v.emplace_back(x);
        ref.emplace_back(std::move(x));
        break;
      }
      case 4: {
        if (!ref.empty()) {
          v.pop_back();
          ref.pop_back();
        }
        break;
      }
      case 5: {  // insert at random position
        const auto pos =
            static_cast<std::size_t>(rng.uniform_int(0, ref.size()));
        T x = ValueGen<T>::make(rng);
        v.insert(v.begin() + static_cast<std::ptrdiff_t>(pos), x);
        ref.insert(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                   std::move(x));
        break;
      }
      case 6: {  // erase one
        if (!ref.empty()) {
          const auto pos =
              static_cast<std::size_t>(rng.uniform_int(0, ref.size() - 1));
          v.erase(v.begin() + static_cast<std::ptrdiff_t>(pos));
          ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(pos));
        }
        break;
      }
      case 7: {  // erase range
        if (!ref.empty()) {
          const auto a =
              static_cast<std::size_t>(rng.uniform_int(0, ref.size()));
          const auto b =
              static_cast<std::size_t>(rng.uniform_int(a, ref.size()));
          v.erase(v.begin() + static_cast<std::ptrdiff_t>(a),
                  v.begin() + static_cast<std::ptrdiff_t>(b));
          ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(a),
                    ref.begin() + static_cast<std::ptrdiff_t>(b));
        }
        break;
      }
      case 8: {  // resize
        const auto n = static_cast<std::size_t>(rng.uniform_int(0, 24));
        v.resize(n);
        ref.resize(n);
        break;
      }
      case 9: {  // reserve (must not change contents)
        const auto n = static_cast<std::size_t>(rng.uniform_int(0, 32));
        v.reserve(n);
        break;
      }
      case 10: {  // occasional clear keeps revisiting the inline regime
        if (rng.uniform_int(0, 9) == 0) {
          v.clear();
          ref.clear();
        }
        break;
      }
      case 11: {  // copy + move round trip through fresh objects
        InlineVec<T, N> copy = v;
        InlineVec<T, N> moved = std::move(copy);
        v = std::move(moved);
        break;
      }
      default:
        break;
    }
    check_same(v, ref);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(InlineVecProperty, MatchesVectorTrivialElements) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE(seed);
    run_property<int, 4>(seed);
  }
}

TEST(InlineVecProperty, MatchesVectorStringElements) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE(seed);
    run_property<std::string, 2>(seed);
  }
}

}  // namespace
}  // namespace iq
