file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_epoch.dir/bench_ablation_epoch.cpp.o"
  "CMakeFiles/bench_ablation_epoch.dir/bench_ablation_epoch.cpp.o.d"
  "bench_ablation_epoch"
  "bench_ablation_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
