file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_overreaction_net.dir/bench_table6_overreaction_net.cpp.o"
  "CMakeFiles/bench_table6_overreaction_net.dir/bench_table6_overreaction_net.cpp.o.d"
  "bench_table6_overreaction_net"
  "bench_table6_overreaction_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_overreaction_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
