# Empty compiler generated dependencies file for bench_table6_overreaction_net.
# This may be replaced when dependencies are built.
