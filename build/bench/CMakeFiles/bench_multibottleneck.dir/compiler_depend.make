# Empty compiler generated dependencies file for bench_multibottleneck.
# This may be replaced when dependencies are built.
