file(REMOVE_RECURSE
  "CMakeFiles/bench_multibottleneck.dir/bench_multibottleneck.cpp.o"
  "CMakeFiles/bench_multibottleneck.dir/bench_multibottleneck.cpp.o.d"
  "bench_multibottleneck"
  "bench_multibottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multibottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
