file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_conflict_app.dir/bench_table3_conflict_app.cpp.o"
  "CMakeFiles/bench_table3_conflict_app.dir/bench_table3_conflict_app.cpp.o.d"
  "bench_table3_conflict_app"
  "bench_table3_conflict_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_conflict_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
