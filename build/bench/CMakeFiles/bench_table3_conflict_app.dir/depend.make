# Empty dependencies file for bench_table3_conflict_app.
# This may be replaced when dependencies are built.
