# Empty compiler generated dependencies file for bench_table7_granularity_app.
# This may be replaced when dependencies are built.
