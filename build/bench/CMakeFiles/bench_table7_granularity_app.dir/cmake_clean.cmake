file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_granularity_app.dir/bench_table7_granularity_app.cpp.o"
  "CMakeFiles/bench_table7_granularity_app.dir/bench_table7_granularity_app.cpp.o.d"
  "bench_table7_granularity_app"
  "bench_table7_granularity_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_granularity_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
