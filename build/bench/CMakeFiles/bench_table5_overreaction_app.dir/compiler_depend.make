# Empty compiler generated dependencies file for bench_table5_overreaction_app.
# This may be replaced when dependencies are built.
