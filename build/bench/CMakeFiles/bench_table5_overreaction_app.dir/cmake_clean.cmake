file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_overreaction_app.dir/bench_table5_overreaction_app.cpp.o"
  "CMakeFiles/bench_table5_overreaction_app.dir/bench_table5_overreaction_app.cpp.o.d"
  "bench_table5_overreaction_app"
  "bench_table5_overreaction_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_overreaction_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
