file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_jitter_series.dir/bench_fig23_jitter_series.cpp.o"
  "CMakeFiles/bench_fig23_jitter_series.dir/bench_fig23_jitter_series.cpp.o.d"
  "bench_fig23_jitter_series"
  "bench_fig23_jitter_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_jitter_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
