# Empty dependencies file for bench_fig23_jitter_series.
# This may be replaced when dependencies are built.
