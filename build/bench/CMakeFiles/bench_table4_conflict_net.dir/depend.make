# Empty dependencies file for bench_table4_conflict_net.
# This may be replaced when dependencies are built.
