# Empty compiler generated dependencies file for bench_table8_granularity_net.
# This may be replaced when dependencies are built.
