file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_basic.dir/bench_table1_basic.cpp.o"
  "CMakeFiles/bench_table1_basic.dir/bench_table1_basic.cpp.o.d"
  "bench_table1_basic"
  "bench_table1_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
