# Empty dependencies file for bench_table1_basic.
# This may be replaced when dependencies are built.
