file(REMOVE_RECURSE
  "CMakeFiles/bench_multiflow.dir/bench_multiflow.cpp.o"
  "CMakeFiles/bench_multiflow.dir/bench_multiflow.cpp.o.d"
  "bench_multiflow"
  "bench_multiflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
