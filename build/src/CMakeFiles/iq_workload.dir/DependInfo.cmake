
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/workload/cbr_source.cpp" "src/CMakeFiles/iq_workload.dir/iq/workload/cbr_source.cpp.o" "gcc" "src/CMakeFiles/iq_workload.dir/iq/workload/cbr_source.cpp.o.d"
  "/root/repo/src/iq/workload/frame_schedule.cpp" "src/CMakeFiles/iq_workload.dir/iq/workload/frame_schedule.cpp.o" "gcc" "src/CMakeFiles/iq_workload.dir/iq/workload/frame_schedule.cpp.o.d"
  "/root/repo/src/iq/workload/mbone_trace.cpp" "src/CMakeFiles/iq_workload.dir/iq/workload/mbone_trace.cpp.o" "gcc" "src/CMakeFiles/iq_workload.dir/iq/workload/mbone_trace.cpp.o.d"
  "/root/repo/src/iq/workload/vbr_source.cpp" "src/CMakeFiles/iq_workload.dir/iq/workload/vbr_source.cpp.o" "gcc" "src/CMakeFiles/iq_workload.dir/iq/workload/vbr_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
