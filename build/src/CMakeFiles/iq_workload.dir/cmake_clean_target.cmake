file(REMOVE_RECURSE
  "libiq_workload.a"
)
