# Empty dependencies file for iq_workload.
# This may be replaced when dependencies are built.
