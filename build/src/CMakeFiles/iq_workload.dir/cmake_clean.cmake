file(REMOVE_RECURSE
  "CMakeFiles/iq_workload.dir/iq/workload/cbr_source.cpp.o"
  "CMakeFiles/iq_workload.dir/iq/workload/cbr_source.cpp.o.d"
  "CMakeFiles/iq_workload.dir/iq/workload/frame_schedule.cpp.o"
  "CMakeFiles/iq_workload.dir/iq/workload/frame_schedule.cpp.o.d"
  "CMakeFiles/iq_workload.dir/iq/workload/mbone_trace.cpp.o"
  "CMakeFiles/iq_workload.dir/iq/workload/mbone_trace.cpp.o.d"
  "CMakeFiles/iq_workload.dir/iq/workload/vbr_source.cpp.o"
  "CMakeFiles/iq_workload.dir/iq/workload/vbr_source.cpp.o.d"
  "libiq_workload.a"
  "libiq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
