# Empty dependencies file for iq_rudp.
# This may be replaced when dependencies are built.
