file(REMOVE_RECURSE
  "CMakeFiles/iq_rudp.dir/iq/rudp/codec.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/codec.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/congestion.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/congestion.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/connection.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/connection.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/loss_monitor.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/loss_monitor.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/recv_buffer.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/recv_buffer.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/reliability.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/reliability.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/rtt_estimator.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/rtt_estimator.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/segment.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/segment.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/send_buffer.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/send_buffer.cpp.o.d"
  "CMakeFiles/iq_rudp.dir/iq/rudp/seq.cpp.o"
  "CMakeFiles/iq_rudp.dir/iq/rudp/seq.cpp.o.d"
  "libiq_rudp.a"
  "libiq_rudp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_rudp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
