
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/rudp/codec.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/codec.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/codec.cpp.o.d"
  "/root/repo/src/iq/rudp/congestion.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/congestion.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/congestion.cpp.o.d"
  "/root/repo/src/iq/rudp/connection.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/connection.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/connection.cpp.o.d"
  "/root/repo/src/iq/rudp/loss_monitor.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/loss_monitor.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/loss_monitor.cpp.o.d"
  "/root/repo/src/iq/rudp/recv_buffer.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/recv_buffer.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/recv_buffer.cpp.o.d"
  "/root/repo/src/iq/rudp/reliability.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/reliability.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/reliability.cpp.o.d"
  "/root/repo/src/iq/rudp/rtt_estimator.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/rtt_estimator.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/rtt_estimator.cpp.o.d"
  "/root/repo/src/iq/rudp/segment.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/segment.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/segment.cpp.o.d"
  "/root/repo/src/iq/rudp/send_buffer.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/send_buffer.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/send_buffer.cpp.o.d"
  "/root/repo/src/iq/rudp/seq.cpp" "src/CMakeFiles/iq_rudp.dir/iq/rudp/seq.cpp.o" "gcc" "src/CMakeFiles/iq_rudp.dir/iq/rudp/seq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
