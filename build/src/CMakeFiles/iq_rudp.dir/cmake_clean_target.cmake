file(REMOVE_RECURSE
  "libiq_rudp.a"
)
