file(REMOVE_RECURSE
  "libiq_harness.a"
)
