file(REMOVE_RECURSE
  "CMakeFiles/iq_harness.dir/iq/harness/experiment.cpp.o"
  "CMakeFiles/iq_harness.dir/iq/harness/experiment.cpp.o.d"
  "CMakeFiles/iq_harness.dir/iq/harness/json.cpp.o"
  "CMakeFiles/iq_harness.dir/iq/harness/json.cpp.o.d"
  "CMakeFiles/iq_harness.dir/iq/harness/paper.cpp.o"
  "CMakeFiles/iq_harness.dir/iq/harness/paper.cpp.o.d"
  "CMakeFiles/iq_harness.dir/iq/harness/scenarios.cpp.o"
  "CMakeFiles/iq_harness.dir/iq/harness/scenarios.cpp.o.d"
  "libiq_harness.a"
  "libiq_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
