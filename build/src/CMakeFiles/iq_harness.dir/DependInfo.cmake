
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/harness/experiment.cpp" "src/CMakeFiles/iq_harness.dir/iq/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/iq_harness.dir/iq/harness/experiment.cpp.o.d"
  "/root/repo/src/iq/harness/json.cpp" "src/CMakeFiles/iq_harness.dir/iq/harness/json.cpp.o" "gcc" "src/CMakeFiles/iq_harness.dir/iq/harness/json.cpp.o.d"
  "/root/repo/src/iq/harness/paper.cpp" "src/CMakeFiles/iq_harness.dir/iq/harness/paper.cpp.o" "gcc" "src/CMakeFiles/iq_harness.dir/iq/harness/paper.cpp.o.d"
  "/root/repo/src/iq/harness/scenarios.cpp" "src/CMakeFiles/iq_harness.dir/iq/harness/scenarios.cpp.o" "gcc" "src/CMakeFiles/iq_harness.dir/iq/harness/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_echo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_rudp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
