file(REMOVE_RECURSE
  "libiq_core.a"
)
