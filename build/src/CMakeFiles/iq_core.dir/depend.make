# Empty dependencies file for iq_core.
# This may be replaced when dependencies are built.
