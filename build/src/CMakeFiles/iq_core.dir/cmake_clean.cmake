file(REMOVE_RECURSE
  "CMakeFiles/iq_core.dir/iq/core/adaptation.cpp.o"
  "CMakeFiles/iq_core.dir/iq/core/adaptation.cpp.o.d"
  "CMakeFiles/iq_core.dir/iq/core/coordinator.cpp.o"
  "CMakeFiles/iq_core.dir/iq/core/coordinator.cpp.o.d"
  "CMakeFiles/iq_core.dir/iq/core/iq_connection.cpp.o"
  "CMakeFiles/iq_core.dir/iq/core/iq_connection.cpp.o.d"
  "CMakeFiles/iq_core.dir/iq/core/metrics_export.cpp.o"
  "CMakeFiles/iq_core.dir/iq/core/metrics_export.cpp.o.d"
  "libiq_core.a"
  "libiq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
