file(REMOVE_RECURSE
  "libiq_echo.a"
)
