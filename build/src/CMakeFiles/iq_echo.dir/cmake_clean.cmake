file(REMOVE_RECURSE
  "CMakeFiles/iq_echo.dir/iq/echo/channel.cpp.o"
  "CMakeFiles/iq_echo.dir/iq/echo/channel.cpp.o.d"
  "CMakeFiles/iq_echo.dir/iq/echo/derived.cpp.o"
  "CMakeFiles/iq_echo.dir/iq/echo/derived.cpp.o.d"
  "CMakeFiles/iq_echo.dir/iq/echo/event.cpp.o"
  "CMakeFiles/iq_echo.dir/iq/echo/event.cpp.o.d"
  "CMakeFiles/iq_echo.dir/iq/echo/mux.cpp.o"
  "CMakeFiles/iq_echo.dir/iq/echo/mux.cpp.o.d"
  "CMakeFiles/iq_echo.dir/iq/echo/policies.cpp.o"
  "CMakeFiles/iq_echo.dir/iq/echo/policies.cpp.o.d"
  "CMakeFiles/iq_echo.dir/iq/echo/sink.cpp.o"
  "CMakeFiles/iq_echo.dir/iq/echo/sink.cpp.o.d"
  "CMakeFiles/iq_echo.dir/iq/echo/source.cpp.o"
  "CMakeFiles/iq_echo.dir/iq/echo/source.cpp.o.d"
  "libiq_echo.a"
  "libiq_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
