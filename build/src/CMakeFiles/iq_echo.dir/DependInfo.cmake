
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/echo/channel.cpp" "src/CMakeFiles/iq_echo.dir/iq/echo/channel.cpp.o" "gcc" "src/CMakeFiles/iq_echo.dir/iq/echo/channel.cpp.o.d"
  "/root/repo/src/iq/echo/derived.cpp" "src/CMakeFiles/iq_echo.dir/iq/echo/derived.cpp.o" "gcc" "src/CMakeFiles/iq_echo.dir/iq/echo/derived.cpp.o.d"
  "/root/repo/src/iq/echo/event.cpp" "src/CMakeFiles/iq_echo.dir/iq/echo/event.cpp.o" "gcc" "src/CMakeFiles/iq_echo.dir/iq/echo/event.cpp.o.d"
  "/root/repo/src/iq/echo/mux.cpp" "src/CMakeFiles/iq_echo.dir/iq/echo/mux.cpp.o" "gcc" "src/CMakeFiles/iq_echo.dir/iq/echo/mux.cpp.o.d"
  "/root/repo/src/iq/echo/policies.cpp" "src/CMakeFiles/iq_echo.dir/iq/echo/policies.cpp.o" "gcc" "src/CMakeFiles/iq_echo.dir/iq/echo/policies.cpp.o.d"
  "/root/repo/src/iq/echo/sink.cpp" "src/CMakeFiles/iq_echo.dir/iq/echo/sink.cpp.o" "gcc" "src/CMakeFiles/iq_echo.dir/iq/echo/sink.cpp.o.d"
  "/root/repo/src/iq/echo/source.cpp" "src/CMakeFiles/iq_echo.dir/iq/echo/source.cpp.o" "gcc" "src/CMakeFiles/iq_echo.dir/iq/echo/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_rudp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
