# Empty dependencies file for iq_echo.
# This may be replaced when dependencies are built.
