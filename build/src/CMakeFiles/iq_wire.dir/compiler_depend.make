# Empty compiler generated dependencies file for iq_wire.
# This may be replaced when dependencies are built.
