# Empty dependencies file for iq_wire.
# This may be replaced when dependencies are built.
