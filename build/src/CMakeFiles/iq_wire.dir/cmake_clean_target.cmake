file(REMOVE_RECURSE
  "libiq_wire.a"
)
