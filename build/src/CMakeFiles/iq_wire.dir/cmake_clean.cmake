file(REMOVE_RECURSE
  "CMakeFiles/iq_wire.dir/iq/wire/demux_wire.cpp.o"
  "CMakeFiles/iq_wire.dir/iq/wire/demux_wire.cpp.o.d"
  "CMakeFiles/iq_wire.dir/iq/wire/lossy_wire.cpp.o"
  "CMakeFiles/iq_wire.dir/iq/wire/lossy_wire.cpp.o.d"
  "CMakeFiles/iq_wire.dir/iq/wire/sim_wire.cpp.o"
  "CMakeFiles/iq_wire.dir/iq/wire/sim_wire.cpp.o.d"
  "CMakeFiles/iq_wire.dir/iq/wire/udp_wire.cpp.o"
  "CMakeFiles/iq_wire.dir/iq/wire/udp_wire.cpp.o.d"
  "CMakeFiles/iq_wire.dir/iq/wire/wire.cpp.o"
  "CMakeFiles/iq_wire.dir/iq/wire/wire.cpp.o.d"
  "libiq_wire.a"
  "libiq_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
