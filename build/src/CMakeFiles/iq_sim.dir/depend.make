# Empty dependencies file for iq_sim.
# This may be replaced when dependencies are built.
