file(REMOVE_RECURSE
  "CMakeFiles/iq_sim.dir/iq/sim/event_queue.cpp.o"
  "CMakeFiles/iq_sim.dir/iq/sim/event_queue.cpp.o.d"
  "CMakeFiles/iq_sim.dir/iq/sim/simulator.cpp.o"
  "CMakeFiles/iq_sim.dir/iq/sim/simulator.cpp.o.d"
  "CMakeFiles/iq_sim.dir/iq/sim/timer.cpp.o"
  "CMakeFiles/iq_sim.dir/iq/sim/timer.cpp.o.d"
  "libiq_sim.a"
  "libiq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
