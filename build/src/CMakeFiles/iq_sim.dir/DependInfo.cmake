
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/sim/event_queue.cpp" "src/CMakeFiles/iq_sim.dir/iq/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/iq_sim.dir/iq/sim/event_queue.cpp.o.d"
  "/root/repo/src/iq/sim/simulator.cpp" "src/CMakeFiles/iq_sim.dir/iq/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/iq_sim.dir/iq/sim/simulator.cpp.o.d"
  "/root/repo/src/iq/sim/timer.cpp" "src/CMakeFiles/iq_sim.dir/iq/sim/timer.cpp.o" "gcc" "src/CMakeFiles/iq_sim.dir/iq/sim/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
