file(REMOVE_RECURSE
  "libiq_sim.a"
)
