file(REMOVE_RECURSE
  "libiq_net.a"
)
