file(REMOVE_RECURSE
  "CMakeFiles/iq_net.dir/iq/net/dumbbell.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/dumbbell.cpp.o.d"
  "CMakeFiles/iq_net.dir/iq/net/link.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/link.cpp.o.d"
  "CMakeFiles/iq_net.dir/iq/net/network.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/network.cpp.o.d"
  "CMakeFiles/iq_net.dir/iq/net/node.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/node.cpp.o.d"
  "CMakeFiles/iq_net.dir/iq/net/packet.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/packet.cpp.o.d"
  "CMakeFiles/iq_net.dir/iq/net/parking_lot.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/parking_lot.cpp.o.d"
  "CMakeFiles/iq_net.dir/iq/net/queue.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/queue.cpp.o.d"
  "CMakeFiles/iq_net.dir/iq/net/recording_tracer.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/recording_tracer.cpp.o.d"
  "CMakeFiles/iq_net.dir/iq/net/tracer.cpp.o"
  "CMakeFiles/iq_net.dir/iq/net/tracer.cpp.o.d"
  "libiq_net.a"
  "libiq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
