
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/net/dumbbell.cpp" "src/CMakeFiles/iq_net.dir/iq/net/dumbbell.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/dumbbell.cpp.o.d"
  "/root/repo/src/iq/net/link.cpp" "src/CMakeFiles/iq_net.dir/iq/net/link.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/link.cpp.o.d"
  "/root/repo/src/iq/net/network.cpp" "src/CMakeFiles/iq_net.dir/iq/net/network.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/network.cpp.o.d"
  "/root/repo/src/iq/net/node.cpp" "src/CMakeFiles/iq_net.dir/iq/net/node.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/node.cpp.o.d"
  "/root/repo/src/iq/net/packet.cpp" "src/CMakeFiles/iq_net.dir/iq/net/packet.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/packet.cpp.o.d"
  "/root/repo/src/iq/net/parking_lot.cpp" "src/CMakeFiles/iq_net.dir/iq/net/parking_lot.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/parking_lot.cpp.o.d"
  "/root/repo/src/iq/net/queue.cpp" "src/CMakeFiles/iq_net.dir/iq/net/queue.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/queue.cpp.o.d"
  "/root/repo/src/iq/net/recording_tracer.cpp" "src/CMakeFiles/iq_net.dir/iq/net/recording_tracer.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/recording_tracer.cpp.o.d"
  "/root/repo/src/iq/net/tracer.cpp" "src/CMakeFiles/iq_net.dir/iq/net/tracer.cpp.o" "gcc" "src/CMakeFiles/iq_net.dir/iq/net/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
