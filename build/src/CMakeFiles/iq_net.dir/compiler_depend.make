# Empty compiler generated dependencies file for iq_net.
# This may be replaced when dependencies are built.
