
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/attr/callbacks.cpp" "src/CMakeFiles/iq_attr.dir/iq/attr/callbacks.cpp.o" "gcc" "src/CMakeFiles/iq_attr.dir/iq/attr/callbacks.cpp.o.d"
  "/root/repo/src/iq/attr/list.cpp" "src/CMakeFiles/iq_attr.dir/iq/attr/list.cpp.o" "gcc" "src/CMakeFiles/iq_attr.dir/iq/attr/list.cpp.o.d"
  "/root/repo/src/iq/attr/names.cpp" "src/CMakeFiles/iq_attr.dir/iq/attr/names.cpp.o" "gcc" "src/CMakeFiles/iq_attr.dir/iq/attr/names.cpp.o.d"
  "/root/repo/src/iq/attr/store.cpp" "src/CMakeFiles/iq_attr.dir/iq/attr/store.cpp.o" "gcc" "src/CMakeFiles/iq_attr.dir/iq/attr/store.cpp.o.d"
  "/root/repo/src/iq/attr/value.cpp" "src/CMakeFiles/iq_attr.dir/iq/attr/value.cpp.o" "gcc" "src/CMakeFiles/iq_attr.dir/iq/attr/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
