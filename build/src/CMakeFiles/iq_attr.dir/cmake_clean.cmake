file(REMOVE_RECURSE
  "CMakeFiles/iq_attr.dir/iq/attr/callbacks.cpp.o"
  "CMakeFiles/iq_attr.dir/iq/attr/callbacks.cpp.o.d"
  "CMakeFiles/iq_attr.dir/iq/attr/list.cpp.o"
  "CMakeFiles/iq_attr.dir/iq/attr/list.cpp.o.d"
  "CMakeFiles/iq_attr.dir/iq/attr/names.cpp.o"
  "CMakeFiles/iq_attr.dir/iq/attr/names.cpp.o.d"
  "CMakeFiles/iq_attr.dir/iq/attr/store.cpp.o"
  "CMakeFiles/iq_attr.dir/iq/attr/store.cpp.o.d"
  "CMakeFiles/iq_attr.dir/iq/attr/value.cpp.o"
  "CMakeFiles/iq_attr.dir/iq/attr/value.cpp.o.d"
  "libiq_attr.a"
  "libiq_attr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_attr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
