file(REMOVE_RECURSE
  "libiq_attr.a"
)
