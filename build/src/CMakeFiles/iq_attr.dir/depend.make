# Empty dependencies file for iq_attr.
# This may be replaced when dependencies are built.
