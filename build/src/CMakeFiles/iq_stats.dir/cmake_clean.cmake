file(REMOVE_RECURSE
  "CMakeFiles/iq_stats.dir/iq/stats/histogram.cpp.o"
  "CMakeFiles/iq_stats.dir/iq/stats/histogram.cpp.o.d"
  "CMakeFiles/iq_stats.dir/iq/stats/interarrival.cpp.o"
  "CMakeFiles/iq_stats.dir/iq/stats/interarrival.cpp.o.d"
  "CMakeFiles/iq_stats.dir/iq/stats/metrics.cpp.o"
  "CMakeFiles/iq_stats.dir/iq/stats/metrics.cpp.o.d"
  "CMakeFiles/iq_stats.dir/iq/stats/running_stats.cpp.o"
  "CMakeFiles/iq_stats.dir/iq/stats/running_stats.cpp.o.d"
  "CMakeFiles/iq_stats.dir/iq/stats/table.cpp.o"
  "CMakeFiles/iq_stats.dir/iq/stats/table.cpp.o.d"
  "CMakeFiles/iq_stats.dir/iq/stats/timeseries.cpp.o"
  "CMakeFiles/iq_stats.dir/iq/stats/timeseries.cpp.o.d"
  "libiq_stats.a"
  "libiq_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
