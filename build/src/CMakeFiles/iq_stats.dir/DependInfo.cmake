
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/stats/histogram.cpp" "src/CMakeFiles/iq_stats.dir/iq/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/iq_stats.dir/iq/stats/histogram.cpp.o.d"
  "/root/repo/src/iq/stats/interarrival.cpp" "src/CMakeFiles/iq_stats.dir/iq/stats/interarrival.cpp.o" "gcc" "src/CMakeFiles/iq_stats.dir/iq/stats/interarrival.cpp.o.d"
  "/root/repo/src/iq/stats/metrics.cpp" "src/CMakeFiles/iq_stats.dir/iq/stats/metrics.cpp.o" "gcc" "src/CMakeFiles/iq_stats.dir/iq/stats/metrics.cpp.o.d"
  "/root/repo/src/iq/stats/running_stats.cpp" "src/CMakeFiles/iq_stats.dir/iq/stats/running_stats.cpp.o" "gcc" "src/CMakeFiles/iq_stats.dir/iq/stats/running_stats.cpp.o.d"
  "/root/repo/src/iq/stats/table.cpp" "src/CMakeFiles/iq_stats.dir/iq/stats/table.cpp.o" "gcc" "src/CMakeFiles/iq_stats.dir/iq/stats/table.cpp.o.d"
  "/root/repo/src/iq/stats/timeseries.cpp" "src/CMakeFiles/iq_stats.dir/iq/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/iq_stats.dir/iq/stats/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
