# Empty dependencies file for iq_stats.
# This may be replaced when dependencies are built.
