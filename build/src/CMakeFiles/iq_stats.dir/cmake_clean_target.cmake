file(REMOVE_RECURSE
  "libiq_stats.a"
)
