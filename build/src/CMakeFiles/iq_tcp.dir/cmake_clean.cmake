file(REMOVE_RECURSE
  "CMakeFiles/iq_tcp.dir/iq/tcp/tcp_connection.cpp.o"
  "CMakeFiles/iq_tcp.dir/iq/tcp/tcp_connection.cpp.o.d"
  "CMakeFiles/iq_tcp.dir/iq/tcp/tcp_source.cpp.o"
  "CMakeFiles/iq_tcp.dir/iq/tcp/tcp_source.cpp.o.d"
  "libiq_tcp.a"
  "libiq_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
