file(REMOVE_RECURSE
  "libiq_tcp.a"
)
