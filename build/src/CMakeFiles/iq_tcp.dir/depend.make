# Empty dependencies file for iq_tcp.
# This may be replaced when dependencies are built.
