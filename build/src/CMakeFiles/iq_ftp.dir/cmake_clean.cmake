file(REMOVE_RECURSE
  "CMakeFiles/iq_ftp.dir/iq/ftp/iq_ftp.cpp.o"
  "CMakeFiles/iq_ftp.dir/iq/ftp/iq_ftp.cpp.o.d"
  "libiq_ftp.a"
  "libiq_ftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_ftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
