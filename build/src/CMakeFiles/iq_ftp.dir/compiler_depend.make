# Empty compiler generated dependencies file for iq_ftp.
# This may be replaced when dependencies are built.
