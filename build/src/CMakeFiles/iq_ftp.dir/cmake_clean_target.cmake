file(REMOVE_RECURSE
  "libiq_ftp.a"
)
