file(REMOVE_RECURSE
  "CMakeFiles/iq_common.dir/iq/common/bytes.cpp.o"
  "CMakeFiles/iq_common.dir/iq/common/bytes.cpp.o.d"
  "CMakeFiles/iq_common.dir/iq/common/log.cpp.o"
  "CMakeFiles/iq_common.dir/iq/common/log.cpp.o.d"
  "CMakeFiles/iq_common.dir/iq/common/rng.cpp.o"
  "CMakeFiles/iq_common.dir/iq/common/rng.cpp.o.d"
  "CMakeFiles/iq_common.dir/iq/common/time.cpp.o"
  "CMakeFiles/iq_common.dir/iq/common/time.cpp.o.d"
  "libiq_common.a"
  "libiq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
