
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/common/bytes.cpp" "src/CMakeFiles/iq_common.dir/iq/common/bytes.cpp.o" "gcc" "src/CMakeFiles/iq_common.dir/iq/common/bytes.cpp.o.d"
  "/root/repo/src/iq/common/log.cpp" "src/CMakeFiles/iq_common.dir/iq/common/log.cpp.o" "gcc" "src/CMakeFiles/iq_common.dir/iq/common/log.cpp.o.d"
  "/root/repo/src/iq/common/rng.cpp" "src/CMakeFiles/iq_common.dir/iq/common/rng.cpp.o" "gcc" "src/CMakeFiles/iq_common.dir/iq/common/rng.cpp.o.d"
  "/root/repo/src/iq/common/time.cpp" "src/CMakeFiles/iq_common.dir/iq/common/time.cpp.o" "gcc" "src/CMakeFiles/iq_common.dir/iq/common/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
