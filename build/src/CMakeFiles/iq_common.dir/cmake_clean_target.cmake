file(REMOVE_RECURSE
  "libiq_common.a"
)
