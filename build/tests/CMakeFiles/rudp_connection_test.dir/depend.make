# Empty dependencies file for rudp_connection_test.
# This may be replaced when dependencies are built.
