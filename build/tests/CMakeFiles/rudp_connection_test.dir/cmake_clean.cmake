file(REMOVE_RECURSE
  "CMakeFiles/rudp_connection_test.dir/rudp_connection_test.cpp.o"
  "CMakeFiles/rudp_connection_test.dir/rudp_connection_test.cpp.o.d"
  "rudp_connection_test"
  "rudp_connection_test.pdb"
  "rudp_connection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rudp_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
