file(REMOVE_RECURSE
  "CMakeFiles/derived_channel_test.dir/derived_channel_test.cpp.o"
  "CMakeFiles/derived_channel_test.dir/derived_channel_test.cpp.o.d"
  "derived_channel_test"
  "derived_channel_test.pdb"
  "derived_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
