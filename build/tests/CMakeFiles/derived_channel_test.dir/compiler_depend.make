# Empty compiler generated dependencies file for derived_channel_test.
# This may be replaced when dependencies are built.
