file(REMOVE_RECURSE
  "CMakeFiles/udp_wire_test.dir/udp_wire_test.cpp.o"
  "CMakeFiles/udp_wire_test.dir/udp_wire_test.cpp.o.d"
  "udp_wire_test"
  "udp_wire_test.pdb"
  "udp_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
