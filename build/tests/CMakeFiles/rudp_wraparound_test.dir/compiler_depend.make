# Empty compiler generated dependencies file for rudp_wraparound_test.
# This may be replaced when dependencies are built.
