file(REMOVE_RECURSE
  "CMakeFiles/rudp_wraparound_test.dir/rudp_wraparound_test.cpp.o"
  "CMakeFiles/rudp_wraparound_test.dir/rudp_wraparound_test.cpp.o.d"
  "rudp_wraparound_test"
  "rudp_wraparound_test.pdb"
  "rudp_wraparound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rudp_wraparound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
