file(REMOVE_RECURSE
  "CMakeFiles/rudp_features_test.dir/rudp_features_test.cpp.o"
  "CMakeFiles/rudp_features_test.dir/rudp_features_test.cpp.o.d"
  "rudp_features_test"
  "rudp_features_test.pdb"
  "rudp_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rudp_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
