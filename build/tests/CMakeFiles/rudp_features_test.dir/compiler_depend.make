# Empty compiler generated dependencies file for rudp_features_test.
# This may be replaced when dependencies are built.
