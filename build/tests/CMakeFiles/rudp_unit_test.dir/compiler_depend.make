# Empty compiler generated dependencies file for rudp_unit_test.
# This may be replaced when dependencies are built.
