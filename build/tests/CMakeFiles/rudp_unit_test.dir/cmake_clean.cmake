file(REMOVE_RECURSE
  "CMakeFiles/rudp_unit_test.dir/rudp_unit_test.cpp.o"
  "CMakeFiles/rudp_unit_test.dir/rudp_unit_test.cpp.o.d"
  "rudp_unit_test"
  "rudp_unit_test.pdb"
  "rudp_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rudp_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
