# Empty compiler generated dependencies file for rudp_property_test.
# This may be replaced when dependencies are built.
