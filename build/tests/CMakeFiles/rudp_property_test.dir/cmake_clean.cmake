file(REMOVE_RECURSE
  "CMakeFiles/rudp_property_test.dir/rudp_property_test.cpp.o"
  "CMakeFiles/rudp_property_test.dir/rudp_property_test.cpp.o.d"
  "rudp_property_test"
  "rudp_property_test.pdb"
  "rudp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rudp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
