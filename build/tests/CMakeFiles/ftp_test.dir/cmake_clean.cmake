file(REMOVE_RECURSE
  "CMakeFiles/ftp_test.dir/ftp_test.cpp.o"
  "CMakeFiles/ftp_test.dir/ftp_test.cpp.o.d"
  "ftp_test"
  "ftp_test.pdb"
  "ftp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
