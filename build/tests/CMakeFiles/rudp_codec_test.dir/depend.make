# Empty dependencies file for rudp_codec_test.
# This may be replaced when dependencies are built.
