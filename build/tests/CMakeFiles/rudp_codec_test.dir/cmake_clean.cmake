file(REMOVE_RECURSE
  "CMakeFiles/rudp_codec_test.dir/rudp_codec_test.cpp.o"
  "CMakeFiles/rudp_codec_test.dir/rudp_codec_test.cpp.o.d"
  "rudp_codec_test"
  "rudp_codec_test.pdb"
  "rudp_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rudp_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
