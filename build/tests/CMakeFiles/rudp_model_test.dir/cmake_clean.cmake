file(REMOVE_RECURSE
  "CMakeFiles/rudp_model_test.dir/rudp_model_test.cpp.o"
  "CMakeFiles/rudp_model_test.dir/rudp_model_test.cpp.o.d"
  "rudp_model_test"
  "rudp_model_test.pdb"
  "rudp_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rudp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
