# Empty dependencies file for rudp_model_test.
# This may be replaced when dependencies are built.
