file(REMOVE_RECURSE
  "CMakeFiles/recording_tracer_test.dir/recording_tracer_test.cpp.o"
  "CMakeFiles/recording_tracer_test.dir/recording_tracer_test.cpp.o.d"
  "recording_tracer_test"
  "recording_tracer_test.pdb"
  "recording_tracer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recording_tracer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
