# Empty dependencies file for recording_tracer_test.
# This may be replaced when dependencies are built.
