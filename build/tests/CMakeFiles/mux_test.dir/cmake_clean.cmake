file(REMOVE_RECURSE
  "CMakeFiles/mux_test.dir/mux_test.cpp.o"
  "CMakeFiles/mux_test.dir/mux_test.cpp.o.d"
  "mux_test"
  "mux_test.pdb"
  "mux_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
