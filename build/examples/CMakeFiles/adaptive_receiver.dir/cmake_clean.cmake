file(REMOVE_RECURSE
  "CMakeFiles/adaptive_receiver.dir/adaptive_receiver.cpp.o"
  "CMakeFiles/adaptive_receiver.dir/adaptive_receiver.cpp.o.d"
  "adaptive_receiver"
  "adaptive_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
