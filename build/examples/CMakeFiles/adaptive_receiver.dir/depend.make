# Empty dependencies file for adaptive_receiver.
# This may be replaced when dependencies are built.
