# Empty dependencies file for iqrudp_lab.
# This may be replaced when dependencies are built.
