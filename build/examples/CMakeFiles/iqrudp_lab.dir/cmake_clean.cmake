file(REMOVE_RECURSE
  "CMakeFiles/iqrudp_lab.dir/iqrudp_lab.cpp.o"
  "CMakeFiles/iqrudp_lab.dir/iqrudp_lab.cpp.o.d"
  "iqrudp_lab"
  "iqrudp_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqrudp_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
