# Empty dependencies file for remote_visualization.
# This may be replaced when dependencies are built.
