file(REMOVE_RECURSE
  "CMakeFiles/remote_visualization.dir/remote_visualization.cpp.o"
  "CMakeFiles/remote_visualization.dir/remote_visualization.cpp.o.d"
  "remote_visualization"
  "remote_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
