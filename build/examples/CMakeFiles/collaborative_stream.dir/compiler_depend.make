# Empty compiler generated dependencies file for collaborative_stream.
# This may be replaced when dependencies are built.
