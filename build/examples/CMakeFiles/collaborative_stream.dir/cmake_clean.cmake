file(REMOVE_RECURSE
  "CMakeFiles/collaborative_stream.dir/collaborative_stream.cpp.o"
  "CMakeFiles/collaborative_stream.dir/collaborative_stream.cpp.o.d"
  "collaborative_stream"
  "collaborative_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
