file(REMOVE_RECURSE
  "CMakeFiles/iq_ftp_demo.dir/iq_ftp_demo.cpp.o"
  "CMakeFiles/iq_ftp_demo.dir/iq_ftp_demo.cpp.o.d"
  "iq_ftp_demo"
  "iq_ftp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_ftp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
