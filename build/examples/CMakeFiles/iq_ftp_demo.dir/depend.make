# Empty dependencies file for iq_ftp_demo.
# This may be replaced when dependencies are built.
