#!/usr/bin/env bash
# Profile the simulator hot path.
#
# Builds Release with IQ_PROFILE=ON (frame pointers + DWARF symbols, see
# CMakeLists.txt) so stacks unwind cleanly, then:
#   - with perf(1) available: `perf record -g` on the deterministic Table-1
#     scenario sweep (the canonical end-to-end hot path: event loop, codec,
#     RUDP state machines) and print the top of the report;
#   - without perf: fall back to the component microbenchmarks
#     (bench_micro_components), which time the same hot-path pieces —
#     event queue, codec, CRC, controller — individually.
# Usage: scripts/profile.sh [perf.data-output-path]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build-profile
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release -DIQ_PROFILE=ON
cmake --build "$build_dir" -j --target bench_table1_basic bench_micro_components

if command -v perf >/dev/null 2>&1; then
  out="${1:-$build_dir/perf.data}"
  perf record -g --output "$out" -- "$build_dir/bench/bench_table1_basic"
  perf report --stdio --input "$out" | head -n 40
  echo "full profile: perf report --input $out"
else
  echo "perf(1) not found; running component microbenchmarks instead" >&2
  "$build_dir/bench/bench_micro_components"
fi
