#!/usr/bin/env python3
"""Compare a fresh bench_perf run against the committed BENCH_PERF.json.

Two classes of metric:
  - deterministic invariants (event counts, row-identity, allocation
    counts): identical inputs must produce identical values, so any drift
    fails the run;
  - throughput (events/s, MB/s, wall-clock): swings with the machine and
    its load, so drift beyond the threshold only warns.
"""
import json
import sys

THROUGHPUT_WARN_PCT = 30.0

# Non-throughput scalars: excluded from the warn pass (each is either an
# invariant checked exactly below or a machine property).
EXACT_KEYS = {
    "table1_events",
    "runner_threads",
    "hardware_concurrency",
    "codec_steady_roundtrip_allocs",
}


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} baseline.json fresh.json", file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    failures = []
    if base.get("table1_events") != fresh.get("table1_events"):
        failures.append(
            "table1_events drifted: baseline "
            f"{base.get('table1_events')} vs fresh {fresh.get('table1_events')}"
            " (the Table-1 scenario is deterministic; this is a behavior"
            " change, not noise)"
        )
    if fresh.get("runner_rows_identical") is not True:
        failures.append(
            "runner_rows_identical is not true: parallel runner output"
            " diverged from the serial reference"
        )
    if fresh.get("codec_steady_roundtrip_allocs") != 0:
        failures.append(
            "codec_steady_roundtrip_allocs = "
            f"{fresh.get('codec_steady_roundtrip_allocs')} (expected 0: the"
            " arena encode / in-place decode roundtrip must not allocate)"
        )

    for key in sorted(base):
        b = base[key]
        if not isinstance(b, (int, float)) or isinstance(b, bool):
            continue
        if key in EXACT_KEYS:
            continue
        f_ = fresh.get(key)
        if f_ is None:
            print(f"warn: {key} missing from fresh run")
            continue
        if b == 0:
            continue
        delta = (f_ - b) / b * 100.0
        if abs(delta) > THROUGHPUT_WARN_PCT:
            print(f"warn: {key} {delta:+.1f}% vs baseline ({b:.4g} -> {f_:.4g})")

    for key in sorted(set(fresh) - set(base)):
        print(f"note: new metric {key} = {fresh[key]} (not in baseline)")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("perf-compare: invariants hold (throughput deltas warn only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
