#!/usr/bin/env python3
"""Compare a fresh bench run against its committed baseline JSON.

Works for BENCH_PERF.json (bench_perf), BENCH_CM.json (bench_multiflow's
congestion-manager ablation), BENCH_SCALE.json (bench_cityscale's sharded
10k-flow fan-out), BENCH_SCENARIOS.json (bench_scenarios' hostile-network
scenario matrix, docs/SCENARIOS.md) and BENCH_WIRE.json (bench_wire's
real-socket loopback throughput/latency, docs/WIRE.md). Three classes of
metric:
  - deterministic invariants (event counts, row-identity, allocation
    counts): identical inputs must produce identical values, so any drift
    fails the run;
  - simulated results (cm_* and behavioral scale_* keys): the testbed is
    deterministic, so these get a tight drift gate (fail beyond 5%) plus
    hard acceptance floors (CM-on 4-flow Jain >= 0.95; 2:1 priority ratio
    within 10%; sharded rows bit-identical; mailbox allocs zero);
  - throughput (events/s, MB/s, wall-clock): swings with the machine and
    its load, so drift beyond the threshold only warns.
"""
import json
import sys

THROUGHPUT_WARN_PCT = 30.0
CM_FAIL_PCT = 5.0

# Hard acceptance floors for the CM ablation (present only when comparing
# BENCH_CM.json): the shared manager must actually deliver fair shares and
# honor the priority split, not merely reproduce whatever it did last time.
CM_JAIN_FLOOR = 0.95
CM_PRIO_RANGE = (1.8, 2.2)

# The PCLMUL CRC kernel must actually pay for its dispatch machinery: when
# the fresh run selected it (crc_impl == "pclmul"), its measured throughput
# must beat slice-by-8 by at least this factor (measured ~14x on the CI
# container; 5x is the acceptance floor from the hot-path-v3 issue).
CRC_PCLMUL_SPEEDUP_FLOOR = 5.0

# Non-throughput scalars: excluded from the warn pass (each is either an
# invariant checked exactly below or a machine property).
EXACT_KEYS = {
    "table1_events",
    "runner_threads",
    "hardware_concurrency",
    "codec_steady_roundtrip_allocs",
    "wheel_churn_steady_allocs",
    "scale_mailbox_steady_allocs",
    "scale_sim_seconds",
    "wire_blast_count",
    "wire_blast_received",
    "wire_blast_delivered_ratio",
    "wire_ping_count",
    "wire_ping_replies",
    "wire_max_send_batch",
    "wire_max_recv_batch",
    "wire_steady_allocs",
    "wire_decode_failures",
    "wire_sends_dropped",
}

# Deterministic-count invariants: the scenario is seeded and simulated, so
# identical sources must produce identical integers. Any drift fails.
EXACT_MATCH_KEYS = {
    "table1_events",
    "wire_blast_count",
    "wire_ping_count",
    "wire_max_send_batch",
    "scale_flows",
    "scale_frames",
    "scale_events",
    "scale_parcels",
    "scale_epochs",
    "scale_joins",
    "scale_leaves",
}

# Throughput-class scale_* keys (wall-clock dependent): warn only.
SCALE_THROUGHPUT_KEYS = {
    "scale_events_per_s_1shard",
    "scale_events_per_s_2shard",
    "scale_events_per_s_4shard",
}

# Hostile-network scenario matrix (scn_* keys): survivability is gated on
# the FRESH run absolutely — these hold regardless of what the baseline
# says, so a bad baseline cannot grandfather a regression in.
#   - no scenario may wedge, in either coordination mode;
#   - every transfer ends complete and byte-identical with all critical
#     blocks delivered, and every connection audit-clean;
#   - coordinated blackout recovery reaches >= 80% of the pre-fault
#     delivered-byte rate (within the profile's recovery horizon);
#   - per-profile floors on the coordinated critical-block deadline-hit
#     ratio (the coordination claim), pinned below the measured values.
SCN_TRUE_SUFFIXES = ("_completed", "_crc_ok", "_critical_complete",
                     "_audits_clean")
SCN_RECOVERY_FLOOR = 0.8
SCN_CRITICAL_DEADLINE_FLOORS = {
    "satellite": 0.60,  # measured 0.6875: AIMD ramp at 500 ms RTT
    "cellular": 0.95,   # measured 1.0 across the tunnel + reconnect
    "incast": 0.95,     # measured 1.0 through the fan-in collapse
}

# Real-socket wire bench (wire_* keys, BENCH_WIRE.json): packets/second and
# RTT swing with the machine (single-CPU containers run both endpoints on
# one core) and only warn, but the fresh run is gated absolutely on the
# fast path's invariants — zero steady-state allocations, zero decode
# failures on loopback, a reply for every ping, batching actually engaged,
# and a sane delivered ratio under the blast.
WIRE_DELIVERED_FLOOR = 0.75


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} baseline.json fresh.json", file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    failures = []
    if "cm_on_jain4" in fresh and fresh["cm_on_jain4"] < CM_JAIN_FLOOR:
        failures.append(
            f"cm_on_jain4 = {fresh['cm_on_jain4']:.4f} below the"
            f" {CM_JAIN_FLOOR} acceptance floor: four equal-priority flows"
            " under the congestion manager are not sharing fairly"
        )
    if "cm_prio_ratio" in fresh and not (
        CM_PRIO_RANGE[0] <= fresh["cm_prio_ratio"] <= CM_PRIO_RANGE[1]
    ):
        failures.append(
            f"cm_prio_ratio = {fresh['cm_prio_ratio']:.3f} outside"
            f" {CM_PRIO_RANGE}: the 2:1 priority split drifted beyond 10%"
        )
    for key in sorted(EXACT_MATCH_KEYS):
        if key in base and base.get(key) != fresh.get(key):
            failures.append(
                f"{key} drifted: baseline {base.get(key)} vs fresh"
                f" {fresh.get(key)} (the scenario is deterministic; this is"
                " a behavior change, not noise)"
            )
    for key in ("runner_rows_identical", "scale_rows_identical"):
        if key in base and fresh.get(key) is not True:
            failures.append(
                f"{key} is not true: parallel/sharded output diverged from"
                " the serial reference"
            )
    for key in (
        "codec_steady_roundtrip_allocs",
        "scale_mailbox_steady_allocs",
        "wheel_churn_steady_allocs",
    ):
        if key in base and fresh.get(key) != 0:
            failures.append(
                f"{key} = {fresh.get(key)} (expected 0: this path must not"
                " allocate in steady state)"
            )

    # CRC dispatch: absolute gates on the fresh run. The pclmul kernel must
    # clear its speedup floor whenever the dispatcher picked it, and a tier
    # change between baseline and fresh (different machine, or IQ_CRC_IMPL
    # leaked into the bench environment) makes crc_mb_s incomparable.
    if fresh.get("crc_impl") == "pclmul":
        speedup = fresh.get("crc_pclmul_speedup", 0.0)
        if speedup < CRC_PCLMUL_SPEEDUP_FLOOR:
            failures.append(
                f"crc_pclmul_speedup = {speedup:.2f} below the"
                f" {CRC_PCLMUL_SPEEDUP_FLOOR}x floor over slice-by-8: the"
                " folding kernel is not earning its dispatch"
            )
    if "crc_impl" in base and base["crc_impl"] != fresh.get("crc_impl"):
        print(
            f"warn: crc_impl changed ({base['crc_impl']} ->"
            f" {fresh.get('crc_impl')}); dispatch-tier throughput rows are"
            " not comparable across this pair"
        )

    # Scenario-matrix survivability: absolute gates on the fresh run.
    for key in sorted(fresh):
        if not key.startswith("scn_"):
            continue
        v = fresh[key]
        if key.endswith("_wedged") and v is not False:
            failures.append(
                f"{key} is true: the scenario stalled without finishing"
                " or shedding — the transfer wedged"
            )
        elif key.endswith(SCN_TRUE_SUFFIXES) and v is not True:
            failures.append(
                f"{key} is {v}: survivability floor violated (transfer must"
                " end complete, byte-identical, critical-complete and"
                " audit-clean)"
            )
    for profile, floor in sorted(SCN_CRITICAL_DEADLINE_FLOORS.items()):
        key = f"scn_{profile}_coord_recovery_ratio"
        if key in fresh and fresh[key] < SCN_RECOVERY_FLOOR:
            failures.append(
                f"{key} = {fresh[key]:.3f} below the {SCN_RECOVERY_FLOOR}"
                " floor: the coordinated run did not recover its pre-fault"
                " delivered-byte rate after the blackout"
            )
        key = f"scn_{profile}_coord_critical_deadline_hit"
        if key in fresh and fresh[key] < floor:
            failures.append(
                f"{key} = {fresh[key]:.3f} below the {floor} floor:"
                " coordinated critical blocks are missing their deadlines"
            )

    # Wire-bench fast-path invariants: absolute gates on the fresh run.
    for key in ("wire_steady_allocs", "wire_decode_failures"):
        if key in fresh and fresh[key] != 0:
            failures.append(
                f"{key} = {fresh[key]} (expected 0: the batched socket path"
                " must not allocate or mis-decode at steady state)"
            )
    if "wire_ping_replies" in fresh and fresh["wire_ping_replies"] != fresh.get(
        "wire_ping_count"
    ):
        failures.append(
            f"wire_ping_replies = {fresh['wire_ping_replies']} !="
            f" wire_ping_count = {fresh.get('wire_ping_count')}: the echo"
            " loop lost pings it was required to retransmit"
        )
    if "wire_max_recv_batch" in fresh and fresh["wire_max_recv_batch"] < 2:
        failures.append(
            f"wire_max_recv_batch = {fresh['wire_max_recv_batch']}: recvmmsg"
            " never drained more than one datagram per syscall — receive"
            " batching is not engaging"
        )
    if (
        "wire_blast_delivered_ratio" in fresh
        and fresh["wire_blast_delivered_ratio"] < WIRE_DELIVERED_FLOOR
    ):
        failures.append(
            f"wire_blast_delivered_ratio ="
            f" {fresh['wire_blast_delivered_ratio']:.3f} below the"
            f" {WIRE_DELIVERED_FLOOR} floor: the loopback blast shed too"
            " much to be a meaningful throughput measurement"
        )

    for key in sorted(base):
        b = base[key]
        if not isinstance(b, (int, float)) or isinstance(b, bool):
            continue
        if key in EXACT_KEYS or key in EXACT_MATCH_KEYS:
            continue
        f_ = fresh.get(key)
        if f_ is None:
            print(f"warn: {key} missing from fresh run")
            continue
        if key.startswith("scn_") and isinstance(b, int):
            # Deterministic simulated counts (blocks, sheds, reconnects,
            # event totals): identical sources must match exactly.
            if f_ != b:
                failures.append(
                    f"{key} drifted: baseline {b} vs fresh {f_} (the"
                    " scenario matrix is deterministic; this is a behavior"
                    " change, not noise)"
                )
            continue
        if b == 0:
            continue
        delta = (f_ - b) / b * 100.0
        if key.startswith("scale_") and key not in SCALE_THROUGHPUT_KEYS:
            # Behavioral aggregate of the deterministic city-scale scenario.
            if abs(delta) > CM_FAIL_PCT:
                failures.append(
                    f"{key} drifted {delta:+.1f}% vs baseline"
                    f" ({b:.4g} -> {f_:.4g}); the city-scale scenario is"
                    " deterministic, so regenerate BENCH_SCALE.json only"
                    " for an intentional behavior change"
                )
        elif key.startswith("scn_"):
            # Deterministic simulated ratios (deadline hit, recovery score,
            # coordination delta): small drift is a behavior change.
            if abs(delta) > CM_FAIL_PCT:
                failures.append(
                    f"{key} drifted {delta:+.1f}% vs baseline"
                    f" ({b:.4g} -> {f_:.4g}); the scenario matrix is"
                    " deterministic, so regenerate BENCH_SCENARIOS.json only"
                    " for an intentional behavior change"
                )
        elif key.startswith("cm_"):
            # Simulated, deterministic testbed: anything beyond a small
            # drift is a behavior change in the CM or transport, not noise.
            if abs(delta) > CM_FAIL_PCT:
                failures.append(
                    f"{key} drifted {delta:+.1f}% vs baseline"
                    f" ({b:.4g} -> {f_:.4g}); the CM ablation is"
                    " deterministic, so regenerate BENCH_CM.json only for"
                    " an intentional behavior change"
                )
        elif abs(delta) > THROUGHPUT_WARN_PCT:
            print(f"warn: {key} {delta:+.1f}% vs baseline ({b:.4g} -> {f_:.4g})")

    for key in sorted(set(fresh) - set(base)):
        print(f"note: new metric {key} = {fresh[key]} (not in baseline)")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("perf-compare: invariants hold (throughput deltas warn only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
