#!/usr/bin/env bash
# CI entry point: build and run the full test suite twice —
#   1. the default RelWithDebInfo build (the tier-1 verify), and
#   2. an ASan+UBSan build (IQ_SANITIZE=ON) to catch memory and UB errors
#      that pass silently in the default build.
# Usage: scripts/ci.sh [--default-only|--sanitize-only]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

mode="${1:-all}"
case "$mode" in
  all|--default-only|--sanitize-only) ;;
  *) echo "usage: scripts/ci.sh [--default-only|--sanitize-only]" >&2; exit 2 ;;
esac

if [[ "$mode" != "--sanitize-only" ]]; then
  echo "== CI: default build =="
  run_suite build
fi

if [[ "$mode" != "--default-only" ]]; then
  echo "== CI: sanitized build (ASan+UBSan) =="
  run_suite build-sanitize -DIQ_SANITIZE=ON
fi

echo "== CI: all suites passed =="
