#!/usr/bin/env bash
# CI entry point: build and run the full test suite twice, then smoke the
# perf baseline —
#   1. the default RelWithDebInfo build (the tier-1 verify),
#   2. an ASan+UBSan build (IQ_SANITIZE=ON) to catch memory and UB errors
#      that pass silently in the default build (this build also runs the
#      randomized event-queue and timer-wheel property tests under the
#      sanitizers, then reruns the CRC/codec golden suites once per forced
#      IQ_CRC_IMPL tier so every dispatchable kernel — pclmul's unaligned
#      SIMD loads included — is sanitizer-clean and wire-identical), and
#   3. a Release build of bench_perf whose BENCH_PERF.json is archived so
#      every commit carries a hot-path perf baseline (docs/PERFORMANCE.md).
# `--chaos` instead runs the deterministic fault-matrix sweep — fixed seeds
# across {blackout, burst loss, corruption, ack-path loss} plus the failure
# detectors and chaos soaks (docs/ROBUSTNESS.md) — in both the default and
# the sanitized build.
# `--perf-compare` builds the Release bench_perf, runs it, and compares the
# fresh numbers against the committed BENCH_PERF.json baseline
# (scripts/perf_compare.py): deterministic invariants — table1_events,
# runner_rows_identical, codec_steady_roundtrip_allocs — fail on any drift;
# throughput deltas only warn, because wall-clock swings with the machine.
# `--audit` runs the full suite plus the chaos matrix with the protocol
# invariant auditor armed process-wide (IQ_AUDIT=1, docs/AUDIT.md): every
# RudpConnection records its event stream into a flight recorder and a
# tripped invariant aborts the run after writing a JSON dump whose path is
# in the abort message. Default and ASan+UBSan builds.
# `--scale` runs the sharded determinism matrix (docs/SCALE.md): the
# ShardedSim, city-scale, membership-churn, pool-affinity and runner-env
# suites in the default build — plainly and with the invariant auditor
# armed (IQ_AUDIT=1, small ring so 20k connections fit) — then the same
# suites in a ThreadSanitizer build (IQ_TSAN=ON) to prove the lockstep
# worker protocol race-free, and finally the Release bench_cityscale
# (64 x 160 = 10240 subscriber flows at shard counts 1/2/4) gated against
# the committed BENCH_SCALE.json (rows bit-identical, mailbox allocs zero,
# <= 5% drift on behavioral aggregates) plus a short audited full-scale run.
# `--cm` runs the congestion-manager suites (docs/CM.md) — unit, property,
# auditor, integration, shared-destination fault matrix, zero-alloc and
# metrics-export pins — plainly and under IQ_AUDIT=1, in default and
# sanitized builds, then runs the bench_multiflow CM ablation and gates the
# fresh numbers against the committed BENCH_CM.json (Jain >= 0.95 floor,
# 2:1 priority split within 10%, <= 5% drift on any cm_* key).
# `--scenarios` runs the hostile-network scenario matrix (docs/SCENARIOS.md):
# the survivable-FTP, fault-precedence, failure-detector and scenario suites
# in the default build — plainly and under IQ_AUDIT=1 — then the same sweep
# in an ASan+UBSan build, and finally the Release bench_scenarios (three
# path profiles x coordinated/uncoordinated) gated against the committed
# BENCH_SCENARIOS.json (never wedge, byte-identical completion, recovery and
# deadline floors, <= 5% drift) plus an audited run of the same bench.
# `--wire` runs the real-socket matrix (docs/WIRE.md): the epoll event
# loop's regression suite (fd-dispatch mutation, no forced-sleep timers,
# sub-ms precision), the loopback integration tests (batching, send-drop
# accounting, impairment row), the two-process survivable-FTP soak and the
# socket-path zero-allocation pin — plainly and in an ASan+UBSan build —
# then the Release bench_wire gated against the committed BENCH_WIRE.json
# (exact counts and zero-alloc/decode invariants hard-fail; throughput and
# RTT warn only, single-CPU containers run both endpoints on one core).
# `--full` chains every mode above: the default+sanitize+perf smoke, then
# chaos, audit, cm, scale, scenarios and wire.
# Usage: scripts/ci.sh [--default-only|--sanitize-only|--perf-only|--perf-compare|--chaos|--audit|--cm|--scale|--scenarios|--wire|--full]
set -euo pipefail

cd "$(dirname "$0")/.."

# The chaos/fault matrix: every suite that drives a FaultPlan or a failure
# detector. Kept as one regex so the default and sanitized runs sweep the
# identical set.
chaos_filter='^(GilbertElliottTest|FaultPlanTest|FaultInjectorTest|FailureTest|FaultMatrixTest|Seeds/Chaos)'

# The congestion-manager matrix: apportionment unit + property suites, the
# CM auditor, facade integration, the shared-destination fault rows, and
# the CM-attached zero-allocation / metrics-export pins.
cm_filter='^(ApportionTest|CongestionManagerTest|CmAuditorTest|CmIntegrationTest|Seeds/CmApportionProperty|FaultMatrixTest\.SharedDestination|ZeroAllocTest|MetricsExportTest|JainIndexTest)'

# The sharded-determinism matrix: engine lockstep/ordering units, the
# city-scale scenario (shard counts 1/2/4/7, serial and threaded, inside
# the tests), membership churn edges, pool affinity, runner env overrides,
# and the timing-wheel property suite (the scheduler every shard now runs
# on — its fire order is what keeps the cross-shard digests bit-identical).
scale_filter='^(ShardedSimTest|CityScaleTest|GroupMembershipTest|MboneTraceTest|ObjectPoolTest|RunnerThreadsTest|TimerWheelPropertyTest)'

# The hostile-network scenario matrix: the survivable file transfer and its
# resume bookkeeping, the fault-plan precedence rows, the failure detectors
# (incl. the high-RTT false-trip regressions), and the profile runs.
scenarios_filter='^(FileSpecTest|FileImageTest|IqFtpTest|FtpResumeTest|ScenarioTest|RateScoreTest|FaultInjectorTest|FaultPlanTest|FailureTest)'

# The real-socket matrix: the epoll loop regression suite, the loopback
# integration tests, the two-process soak and the socket zero-alloc pin.
wire_filter='^(RealtimeLoopTest|UdpWireTest|WireSoakTest|WireAllocTest)'

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

chaos_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
        -R "$chaos_filter"
}

perf_smoke() {
  local build_dir=build-perf
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j --target bench_perf
  local out_dir="${CI_ARTIFACTS_DIR:-$build_dir}"
  mkdir -p "$out_dir"
  "$build_dir/bench/bench_perf" "$out_dir/BENCH_PERF.json"
  echo "perf baseline archived at $out_dir/BENCH_PERF.json"
}

perf_compare() {
  local build_dir=build-perf
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j --target bench_perf
  local fresh="$build_dir/BENCH_PERF.fresh.json"
  "$build_dir/bench/bench_perf" "$fresh"
  python3 scripts/perf_compare.py BENCH_PERF.json "$fresh"
}

cm_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
        -R "$cm_filter"
  # Same sweep with the invariant auditor armed: the CM's share-conservation
  # / anti-starvation / loss-dedup checks abort on violation. (The
  # zero-alloc pins skip themselves under IQ_AUDIT — recording allocates.)
  IQ_AUDIT=1 IQ_AUDIT_DUMP_DIR="${CI_ARTIFACTS_DIR:-$build_dir}" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
          -R "$cm_filter"
}

scale_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
        -R "$scale_filter"
  # Same matrix with the protocol auditor armed; the small ring keeps the
  # per-connection flight recorders affordable at city scale.
  IQ_AUDIT=1 IQ_AUDIT_RING=64 \
  IQ_AUDIT_DUMP_DIR="${CI_ARTIFACTS_DIR:-$build_dir}" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
          -R "$scale_filter" -E 'ObjectPoolTest'
}

scale_bench() {
  local build_dir=build-perf
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j --target bench_cityscale
  local fresh="$build_dir/BENCH_SCALE.fresh.json"
  "$build_dir/bench/bench_cityscale" "$fresh"
  python3 scripts/perf_compare.py BENCH_SCALE.json "$fresh"
  # Audit-clean at full fan-out: 10240 subscriber flows with the invariant
  # auditor armed (short simulated run; any tripped invariant aborts).
  IQ_AUDIT=1 IQ_AUDIT_RING=64 IQ_SCALE_SIM_S=2 \
  IQ_AUDIT_DUMP_DIR="${CI_ARTIFACTS_DIR:-$build_dir}" \
    "$build_dir/bench/bench_cityscale" "$build_dir/BENCH_SCALE.audited.json"
}

scenarios_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
        -R "$scenarios_filter"
  # Same sweep with the protocol invariant auditor armed (fatal on trip).
  IQ_AUDIT=1 IQ_AUDIT_DUMP_DIR="${CI_ARTIFACTS_DIR:-$build_dir}" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
          -R "$scenarios_filter"
}

scenarios_bench() {
  local build_dir=build-perf
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j --target bench_scenarios
  local fresh="$build_dir/BENCH_SCENARIOS.fresh.json"
  "$build_dir/bench/bench_scenarios" "$fresh"
  python3 scripts/perf_compare.py BENCH_SCENARIOS.json "$fresh"
  # The matrix is deterministic and audit-clean: an armed run must produce
  # the identical JSON (any tripped invariant aborts the bench).
  IQ_AUDIT=1 IQ_AUDIT_DUMP_DIR="${CI_ARTIFACTS_DIR:-$build_dir}" \
    "$build_dir/bench/bench_scenarios" "$build_dir/BENCH_SCENARIOS.audited.json"
  cmp "$fresh" "$build_dir/BENCH_SCENARIOS.audited.json"
}

wire_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
        -R "$wire_filter"
}

wire_bench() {
  local build_dir=build-perf
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j --target bench_wire
  local fresh="$build_dir/BENCH_WIRE.fresh.json"
  "$build_dir/bench/bench_wire" "$fresh"
  python3 scripts/perf_compare.py BENCH_WIRE.json "$fresh"
}

cm_ablation() {
  local build_dir=build-perf
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j --target bench_multiflow
  local fresh="$build_dir/BENCH_CM.fresh.json"
  "$build_dir/bench/bench_multiflow" "$fresh"
  python3 scripts/perf_compare.py BENCH_CM.json "$fresh"
}

mode="${1:-all}"
case "$mode" in
  all|--default-only|--sanitize-only|--perf-only|--perf-compare|--chaos|--audit|--cm|--scale|--scenarios|--wire|--full) ;;
  *) echo "usage: scripts/ci.sh [--default-only|--sanitize-only|--perf-only|--perf-compare|--chaos|--audit|--cm|--scale|--scenarios|--wire|--full]" >&2
     exit 2 ;;
esac

if [[ "$mode" == "--full" ]]; then
  # The umbrella: every gate in sequence, each in its own process so the
  # audit modes' exported env never leaks across.
  for sub in all --chaos --audit --cm --scale --scenarios --wire; do
    echo "==== CI full: $sub ===="
    "$0" "$sub"
  done
  echo "== CI: full matrix passed =="
  exit 0
fi

if [[ "$mode" == "--scenarios" ]]; then
  echo "== CI: scenario matrix suites, default build (plain + IQ_AUDIT=1) =="
  scenarios_suite build
  echo "== CI: scenario matrix suites, sanitized build (ASan+UBSan) =="
  scenarios_suite build-sanitize -DIQ_SANITIZE=ON
  echo "== CI: scenario bench vs committed BENCH_SCENARIOS.json =="
  scenarios_bench
  echo "== CI: scenario matrix passed =="
  exit 0
fi

if [[ "$mode" == "--wire" ]]; then
  echo "== CI: real-socket wire suites, default build =="
  wire_suite build
  echo "== CI: real-socket wire suites, sanitized build (ASan+UBSan) =="
  wire_suite build-sanitize -DIQ_SANITIZE=ON
  echo "== CI: wire bench vs committed BENCH_WIRE.json =="
  wire_bench
  echo "== CI: real-socket wire matrix passed =="
  exit 0
fi

if [[ "$mode" == "--perf-compare" ]]; then
  echo "== CI: perf compare vs committed BENCH_PERF.json =="
  perf_compare
  echo "== CI: perf compare passed =="
  exit 0
fi

if [[ "$mode" == "--scale" ]]; then
  echo "== CI: sharded determinism matrix, default build =="
  scale_suite build
  echo "== CI: sharded determinism matrix, TSan build (IQ_TSAN=ON) =="
  scale_suite build-tsan -DIQ_TSAN=ON
  echo "== CI: city-scale bench vs committed BENCH_SCALE.json =="
  scale_bench
  echo "== CI: sharded determinism matrix passed =="
  exit 0
fi

if [[ "$mode" == "--cm" ]]; then
  echo "== CI: congestion-manager suites, default build =="
  cm_suite build
  echo "== CI: congestion-manager suites, sanitized build (ASan+UBSan) =="
  cm_suite build-sanitize -DIQ_SANITIZE=ON
  echo "== CI: CM ablation vs committed BENCH_CM.json =="
  cm_ablation
  echo "== CI: congestion-manager suites passed =="
  exit 0
fi

if [[ "$mode" == "--chaos" ]]; then
  echo "== CI: chaos fault matrix, default build =="
  chaos_suite build
  echo "== CI: chaos fault matrix, sanitized build (ASan+UBSan) =="
  chaos_suite build-sanitize -DIQ_SANITIZE=ON
  echo "== CI: chaos fault matrix passed =="
  exit 0
fi

if [[ "$mode" == "--audit" ]]; then
  export IQ_AUDIT=1
  export IQ_AUDIT_DUMP_DIR="${CI_ARTIFACTS_DIR:-build}"
  echo "== CI: audited full suite, default build (IQ_AUDIT=1) =="
  run_suite build
  echo "== CI: audited chaos fault matrix, default build =="
  chaos_suite build
  echo "== CI: audited full suite, sanitized build (ASan+UBSan) =="
  run_suite build-sanitize -DIQ_SANITIZE=ON
  echo "== CI: audited chaos fault matrix, sanitized build =="
  chaos_suite build-sanitize -DIQ_SANITIZE=ON
  echo "== CI: audited suites passed =="
  exit 0
fi

if [[ "$mode" == "all" || "$mode" == "--default-only" ]]; then
  echo "== CI: default build =="
  run_suite build
fi

if [[ "$mode" == "all" || "$mode" == "--sanitize-only" ]]; then
  echo "== CI: sanitized build (ASan+UBSan) =="
  run_suite build-sanitize -DIQ_SANITIZE=ON
  # CRC dispatch tiers under sanitizers: force each kernel the dispatcher
  # can select and rerun the tier-identity and wire-freeze suites, so the
  # pclmul path's unaligned SIMD loads and the table kernels' indexing are
  # sanitizer-clean AND seal identical bytes. On CPUs without pclmul the
  # env override falls back (with a warning) and the forced-tier tests
  # skip that kernel internally — the loop stays green everywhere.
  for impl in pclmul slice8 bytewise; do
    echo "== CI: CRC tier $impl, sanitized build =="
    IQ_CRC_IMPL="$impl" ctest --test-dir build-sanitize --output-on-failure \
      -j "$(nproc)" -R '^(CrcDispatchTest|CodecGoldenTest)'
  done
fi

if [[ "$mode" == "all" || "$mode" == "--perf-only" ]]; then
  echo "== CI: perf smoke (Release bench_perf) =="
  perf_smoke
fi

echo "== CI: all suites passed =="
