// Remote visualization (the paper's §3.3 motivating scenario).
//
// A scientific visualization server streams frames to a remote collaborator
// over a congested WAN. Data outside the user's focus region is expendable:
// when the transport reports a high error ratio, the application unmarks
// out-of-focus data (trading reliability for timeliness of the control/
// in-focus stream), and coordinated IQ-RUDP discards unmarked traffic
// before it wastes bottleneck bandwidth.
//
//   $ ./remote_visualization

#include <cstdio>

#include "iq/echo/channel.hpp"
#include "iq/echo/policies.hpp"
#include "iq/harness/scenarios.hpp"
#include "iq/stats/table.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;

  std::printf("remote visualization under 10 Mb/s cross traffic\n");
  std::printf("(tag every 5th frame = control data; unmark the rest when "
              "loss exceeds 30%%; receiver tolerates 40%% loss)\n\n");

  auto run = [](const SchemeSpec& scheme) {
    ExperimentConfig cfg = scenarios::table3(scheme);
    cfg.total_frames = 300;  // keep the demo quick
    return run_experiment(cfg);
  };
  const auto iq = run(SchemeSpec::iq_rudp());
  const auto ru = run(SchemeSpec::rudp());

  stats::Table table({"scheme", "duration(s)", "frames recvd(%)",
                      "control delay(ms)", "control jitter(ms)"});
  auto add = [&](const char* name, const ExperimentResult& r) {
    table.add_row({name, stats::Table::num(r.summary.duration_s),
                   stats::Table::num(r.summary.delivered_pct),
                   stats::Table::num(r.summary.tagged_delay_ms),
                   stats::Table::num(r.summary.tagged_jitter_ms)});
  };
  add("coordinated (IQ-RUDP)", iq);
  add("uncoordinated (RUDP)", ru);
  std::printf("%s", table.render().c_str());

  std::printf("\ncoordination effect: the IQ run discarded %llu out-of-focus "
              "frames before they touched the network, freeing bandwidth "
              "for control data.\n",
              static_cast<unsigned long long>(
                  iq.rudp.messages_discarded_at_send));
  return 0;
}
