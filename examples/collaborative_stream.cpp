// Real-time collaboration stream with resolution down-sampling (§3.4).
//
// A collaboration server streams state updates at a fixed rate. Under
// congestion the application down-samples (smaller updates) instead of
// dropping them; the coordinated transport grows its packet window by
// 1/(1 − rate_chg) so the two adaptations do not compound into
// over-reaction. The demo sweeps congestion levels and shows the window
// rescaling in action.
//
//   $ ./collaborative_stream

#include <cstdio>

#include "iq/harness/scenarios.hpp"
#include "iq/stats/table.hpp"

int main() {
  using namespace iq;
  using namespace iq::harness;

  std::printf("collaborative stream: resolution adaptation vs over-reaction\n\n");

  stats::Table table({"cross traffic", "scheme", "thr(KB/s)", "duration(s)",
                      "jitter(ms)", "window rescales"});
  for (std::int64_t rate : {12'000'000LL, 16'000'000LL}) {
    for (const auto& scheme : {SchemeSpec::iq_rudp(), SchemeSpec::rudp()}) {
      ExperimentConfig cfg = scenarios::table6(scheme, rate);
      cfg.total_frames = 2000;  // quick demo
      const auto r = run_experiment(cfg);
      table.add_row({std::to_string(rate / 1'000'000) + " Mb/s", scheme.label,
                     stats::Table::num(r.summary.throughput_kBps),
                     stats::Table::num(r.summary.duration_s),
                     stats::Table::num(r.summary.jitter_ms, 2),
                     std::to_string(r.coordination.window_rescales)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nwithout coordination, the frame shrink and the congestion-"
              "window shrink compound; with IQ-RUDP the window rescale keeps "
              "the bit rate at the connection's fair share.\n");
  return 0;
}
