// IQ-FTP: selectively lossy file transfer — the paper's future-work system
// (§4), built on the iq::ftp library module.
//
// A large file is divided into blocks; the user supplies a criticality
// function that marks the blocks that must arrive (here: a header region
// plus every checkpoint block). Under congestion the transfer abandons
// non-critical blocks within the receiver's tolerance, finishing sooner
// than a fully reliable transfer while guaranteeing the critical content —
// and reporting the exact holes for a later fill-in pass.
//
//   $ ./iq_ftp_demo

#include <cstdio>
#include <memory>

#include "iq/ftp/iq_ftp.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/net/sinks.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/workload/cbr_source.hpp"

namespace {

using namespace iq;

ftp::IqFtpReceiver::Report transfer(ftp::CriticalFn critical,
                                    double tolerance) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = 2});

  // Congest the bottleneck with 16 Mb/s of UDP cross traffic.
  net::CountingSink cross_sink;
  db.right(1).bind(9000, &cross_sink);
  workload::CbrConfig cbr_cfg;
  cbr_cfg.rate_bps = 16'000'000;
  workload::CbrSource cross(network, db.left(1), db.right(1), cbr_cfg);
  cross.start();

  const net::Endpoint snd_ep{db.left(0).id(), 21};
  const net::Endpoint rcv_ep{db.right(0).id(), 21};
  wire::SimWire wsnd(network, snd_ep, rcv_ep, 1);
  wire::SimWire wrcv(network, rcv_ep, snd_ep, 1);

  core::IqRudpConnection sender_conn(wsnd, {}, rudp::Role::Client);
  rudp::RudpConfig rcfg;
  rcfg.recv_loss_tolerance = tolerance;
  core::IqRudpConnection receiver_conn(wrcv, rcfg, rudp::Role::Server);

  ftp::FileSpec file{.total_bytes = 400 * 16'384, .block_bytes = 16'384};
  ftp::IqFtpSender sender(sender_conn, file, std::move(critical));
  ftp::IqFtpReceiver receiver(receiver_conn);

  receiver_conn.listen();
  sender_conn.set_established_handler([&] { sender.start(); });
  sender_conn.connect();

  while (sim.now() < TimePoint::zero() + Duration::seconds(600) &&
         !receiver.complete()) {
    sim.run_for(Duration::millis(100));
  }
  return receiver.report();
}

}  // namespace

int main() {
  std::printf("IQ-FTP: selectively lossy file transfer (400 x 16 KiB blocks "
              "over a congested 20 Mb/s link)\n\n");

  // User-provided criticality: the first 16 blocks (file header/index) and
  // every 10th block (checkpoints) must arrive.
  auto critical = [](std::uint64_t b) { return b < 16 || b % 10 == 0; };

  const auto lossy = transfer(critical, /*tolerance=*/0.5);
  const auto reliable =
      transfer([](std::uint64_t) { return true; }, /*tolerance=*/0.0);

  std::printf("selective transfer:   %.1f s, %llu/%llu blocks "
              "(%llu critical blocks all intact, %zu holes for later)\n",
              lossy.duration_s(),
              static_cast<unsigned long long>(lossy.blocks_received),
              static_cast<unsigned long long>(lossy.blocks_total),
              static_cast<unsigned long long>(lossy.critical_received),
              lossy.missing.size());
  std::printf("fully reliable:       %.1f s, %llu/%llu blocks\n",
              reliable.duration_s(),
              static_cast<unsigned long long>(reliable.blocks_received),
              static_cast<unsigned long long>(reliable.blocks_total));
  std::printf("\nspeedup from selective reliability: %.2fx\n",
              reliable.duration_s() / lossy.duration_s());
  if (!lossy.missing.empty()) {
    std::printf("first holes: ");
    for (std::size_t i = 0; i < std::min<std::size_t>(8, lossy.missing.size());
         ++i) {
      std::printf("%llu ", static_cast<unsigned long long>(lossy.missing[i]));
    }
    std::printf("...\n");
  }
  return 0;
}
