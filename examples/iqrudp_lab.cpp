// iqrudp_lab: a command-line experiment runner over the harness.
//
// Pick any paper scenario, any transport scheme, and override the knobs
// that matter; get the full metric set (and optional CSV time series) back.
// This is the tool for exploring the parameter space beyond the canned
// benches.
//
//   $ ./iqrudp_lab --scenario=table3 --scheme=rudp
//   $ ./iqrudp_lab --scenario=table6 --scheme=iq --cbr=17000000
//   $ ./iqrudp_lab --scenario=table3 --scheme=iq --frames=300
//         --jitter-csv=/tmp/jitter.csv --cwnd-csv=/tmp/cwnd.csv --json=-
//
// Flags: --scenario={table1..table8,fig23}  --scheme={tcp,rudp,iq,iq_nocond,app_only}
//        --frames=N --cbr=BPS --rtt-ms=N --upper=F --lower=F --seed=N
//        --epoch=N --tolerance=F --jitter-csv=PATH --cwnd-csv=PATH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "iq/harness/json.hpp"
#include "iq/harness/scenarios.hpp"

namespace {

using namespace iq;
using namespace iq::harness;

struct Args {
  std::string scenario = "table3";
  std::string scheme = "iq";
  std::optional<std::uint64_t> frames;
  std::optional<std::int64_t> cbr;
  std::optional<std::int64_t> rtt_ms;
  std::optional<double> upper;
  std::optional<double> lower;
  std::optional<std::uint64_t> seed;
  std::optional<std::uint32_t> epoch;
  std::optional<double> tolerance;
  std::string jitter_csv;
  std::string cwnd_csv;
  std::string json;  ///< path, or "-" for stdout
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--scenario", v)) {
      a.scenario = v;
    } else if (parse_flag(argv[i], "--scheme", v)) {
      a.scheme = v;
    } else if (parse_flag(argv[i], "--frames", v)) {
      a.frames = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--cbr", v)) {
      a.cbr = std::strtoll(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--rtt-ms", v)) {
      a.rtt_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--upper", v)) {
      a.upper = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--lower", v)) {
      a.lower = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--seed", v)) {
      a.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--epoch", v)) {
      a.epoch = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--tolerance", v)) {
      a.tolerance = std::strtod(v.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--jitter-csv", v)) {
      a.jitter_csv = v;
    } else if (parse_flag(argv[i], "--cwnd-csv", v)) {
      a.cwnd_csv = v;
    } else if (parse_flag(argv[i], "--json", v)) {
      a.json = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

SchemeSpec scheme_by_name(const std::string& name) {
  if (name == "tcp") return SchemeSpec::tcp();
  if (name == "rudp") return SchemeSpec::rudp();
  if (name == "iq") return SchemeSpec::iq_rudp();
  if (name == "iq_nocond") return SchemeSpec::iq_rudp_no_cond();
  if (name == "app_only") return SchemeSpec::app_only();
  std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
  std::exit(2);
}

ExperimentConfig scenario_by_name(const std::string& name,
                                  const SchemeSpec& scheme) {
  if (name == "table1") return scenarios::table1(scheme, true);
  if (name == "table1_noadapt") return scenarios::table1(scheme, false);
  if (name == "table2") return scenarios::table2(scheme);
  if (name == "table3") return scenarios::table3(scheme);
  if (name == "table4") return scenarios::table4(scheme);
  if (name == "table5") return scenarios::table5(scheme);
  if (name == "table6") return scenarios::table6(scheme, 16'000'000);
  if (name == "table7") return scenarios::table7(scheme);
  if (name == "table8") return scenarios::table8(scheme);
  if (name == "fig23") return scenarios::fig23(scheme);
  std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const SchemeSpec scheme = scheme_by_name(args.scheme);
  ExperimentConfig cfg = scenario_by_name(args.scenario, scheme);

  if (args.frames) cfg.total_frames = *args.frames;
  if (args.cbr) cfg.cbr_rate_bps = *args.cbr;
  if (args.rtt_ms) cfg.net.path_rtt = Duration::millis(*args.rtt_ms);
  if (args.upper) cfg.upper_threshold = *args.upper;
  if (args.lower) cfg.lower_threshold = *args.lower;
  if (args.seed) cfg.seed = *args.seed;
  if (args.epoch) cfg.loss_epoch_packets = *args.epoch;
  if (args.tolerance) cfg.recv_loss_tolerance = *args.tolerance;
  if (!args.jitter_csv.empty()) cfg.collect_jitter_series = true;
  if (!args.cwnd_csv.empty()) cfg.collect_cwnd_series = true;

  std::printf("scenario=%s scheme=%s frames=%llu cbr=%lld rtt=%lldms "
              "thresholds=%.3f/%.3f epoch=%u tolerance=%.2f seed=%llu\n",
              args.scenario.c_str(), scheme.label.c_str(),
              static_cast<unsigned long long>(cfg.total_frames),
              static_cast<long long>(cfg.cbr_rate_bps),
              static_cast<long long>(cfg.net.path_rtt.ms()),
              cfg.upper_threshold, cfg.lower_threshold,
              cfg.loss_epoch_packets, cfg.recv_loss_tolerance,
              static_cast<unsigned long long>(cfg.seed));

  const ExperimentResult r = run_experiment(cfg);

  std::printf("\ncompleted:        %s (sim %.1f s, %.2fM events)\n",
              r.completed ? "yes" : "NO — hit max_sim_time", r.sim_seconds,
              static_cast<double>(r.events_executed) / 1e6);
  std::printf("duration:         %.2f s\n", r.summary.duration_s);
  std::printf("throughput:       %.1f KB/s\n", r.summary.throughput_kBps);
  std::printf("delivered:        %.1f %% (%llu messages)\n",
              r.summary.delivered_pct,
              static_cast<unsigned long long>(r.summary.messages));
  std::printf("inter-arrival:    %.4f s (jitter %.4f s)\n",
              r.summary.interarrival_s, r.summary.jitter_s);
  std::printf("tagged delay:     %.2f ms (jitter %.2f ms)\n",
              r.summary.tagged_delay_ms, r.summary.tagged_jitter_ms);
  std::printf("one-way delay:    mean %.2f ms, p50 %.2f ms, p95 %.2f ms\n",
              r.summary.owd_mean_ms, r.summary.owd_p50_ms,
              r.summary.owd_p95_ms);
  std::printf("loss:             lifetime %.3f, max epoch %.3f over %llu epochs\n",
              r.app_lifetime_loss_ratio, r.max_epoch_loss,
              static_cast<unsigned long long>(r.epochs));
  std::printf("transport:        %llu segs (%llu rexmit, %llu skipped), "
              "%llu timeouts\n",
              static_cast<unsigned long long>(r.rudp.segments_sent),
              static_cast<unsigned long long>(r.rudp.segments_retransmitted),
              static_cast<unsigned long long>(r.rudp.segments_skipped),
              static_cast<unsigned long long>(r.rudp.timeouts));
  std::printf("coordination:     %llu rescales, %llu discards-at-send, "
              "%llu/%llu deferrals resolved, %llu cond compensations\n",
              static_cast<unsigned long long>(r.coordination.window_rescales),
              static_cast<unsigned long long>(
                  r.rudp.messages_discarded_at_send),
              static_cast<unsigned long long>(
                  r.coordination.deferred_resolved),
              static_cast<unsigned long long>(r.coordination.deferrals_noted),
              static_cast<unsigned long long>(
                  r.coordination.cond_compensations));

  if (!args.jitter_csv.empty()) {
    std::ofstream(args.jitter_csv) << r.jitter_series.to_csv();
    std::printf("jitter series:    %zu points -> %s\n",
                r.jitter_series.size(), args.jitter_csv.c_str());
  }
  if (!args.cwnd_csv.empty()) {
    std::ofstream(args.cwnd_csv) << r.cwnd_series.to_csv();
    std::printf("cwnd series:      %zu points -> %s\n", r.cwnd_series.size(),
                args.cwnd_csv.c_str());
  }
  if (!args.json.empty()) {
    const std::string json = result_to_json(cfg, r);
    if (args.json == "-") {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream(args.json) << json << "\n";
      std::printf("json:             -> %s\n", args.json.c_str());
    }
  }
  return r.completed ? 0 : 1;
}
