// Quickstart: the smallest complete IQ-RUDP program.
//
// Builds a two-host emulated network, opens a coordinated IQ-RUDP
// connection across it, streams a handful of messages, and prints what
// arrived together with the transport metrics the attribute store exposes.
//
//   $ ./quickstart

#include <cstdio>

#include "iq/core/iq_connection.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/wire/sim_wire.hpp"

int main() {
  using namespace iq;

  // 1. An emulated WAN: 20 Mb/s bottleneck, 30 ms RTT (the paper's testbed).
  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = 1});

  // 2. One wire per endpoint, bound to a node and port.
  const net::Endpoint sender_ep{db.left(0).id(), 4000};
  const net::Endpoint receiver_ep{db.right(0).id(), 4000};
  wire::SimWire sender_wire(network, sender_ep, receiver_ep, /*flow=*/1);
  wire::SimWire receiver_wire(network, receiver_ep, sender_ep, /*flow=*/1);

  // 3. A coordinated IQ-RUDP connection pair.
  rudp::RudpConfig cfg;
  core::IqRudpConnection sender(sender_wire, cfg, rudp::Role::Client);
  rudp::RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.25;  // receiver tolerates 25 % message loss
  core::IqRudpConnection receiver(receiver_wire, rcfg, rudp::Role::Server);

  receiver.set_message_handler([&](const rudp::DeliveredMessage& msg) {
    std::printf("  received msg %u: %lld bytes, %s, one-way %.1f ms\n",
                msg.msg_id, static_cast<long long>(msg.bytes),
                msg.marked ? "marked" : "unmarked",
                (msg.delivered - msg.first_sent).to_millis());
  });

  // 4. Connect, then send once established.
  sender.set_established_handler([&] {
    std::printf("connection established, sending...\n");
    for (int i = 0; i < 5; ++i) {
      sender.send({.bytes = 40'000, .marked = true});
    }
    // An unmarked message may be sacrificed under congestion.
    sender.send({.bytes = 40'000, .marked = false});
  });
  receiver.listen();
  sender.connect();

  // 5. Run the virtual clock.
  sim.run_until(TimePoint::zero() + Duration::seconds(5));

  // 6. Inspect the quality attributes the transport exported.
  auto& attrs = sender.attributes();
  std::printf("\ntransport metrics via quality attributes:\n");
  for (const char* name : {"NET_LOSS_RATIO", "NET_RTT_MS", "NET_CWND_PKTS"}) {
    if (auto v = attrs.query_double(name)) {
      std::printf("  %-15s = %.3f\n", name, *v);
    }
  }
  const auto& st = sender.transport().stats();
  std::printf("\nsender stats: %llu segments sent, %llu retransmitted, "
              "%llu acks received\n",
              static_cast<unsigned long long>(st.segments_sent),
              static_cast<unsigned long long>(st.segments_retransmitted),
              static_cast<unsigned long long>(st.acks_received));
  return 0;
}
