// Protocol trace: watch an IQ-RUDP exchange segment by segment.
//
// Uses the connection's segment tap to print an annotated wire trace of a
// short transfer over a lossy pipe — handshake, data, selective acks, a
// fast retransmission, and an ADVANCE abandoning an unmarked message.
// The tool for understanding (and debugging) the protocol's behaviour.
//
//   $ ./protocol_trace

#include <cstdio>

#include "iq/rudp/connection.hpp"
#include "iq/sim/simulator.hpp"
#include "iq/wire/lossy_wire.hpp"

namespace {

using namespace iq;

void install_tap(rudp::RudpConnection& conn, const char* who,
                 sim::Simulator& sim) {
  conn.set_segment_tap([who, &sim](rudp::RudpConnection::TapDirection dir,
                                   const rudp::Segment& seg) {
    std::printf("%8.3f ms  %-8s %s  %s\n", sim.now().to_seconds() * 1e3, who,
                dir == rudp::RudpConnection::TapDirection::Out ? "->" : "<-",
                seg.describe().c_str());
  });
}

}  // namespace

int main() {
  sim::Simulator sim;
  wire::LossyConfig lcfg;
  lcfg.one_way_delay = Duration::millis(15);
  lcfg.drop_probability = 0.15;  // enough loss to show recovery machinery
  lcfg.seed = 4;
  wire::LossyWirePair pipe(sim, lcfg);

  rudp::RudpConfig cfg;
  rudp::RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.5;
  rudp::RudpConnection client(pipe.a(), cfg, rudp::Role::Client);
  rudp::RudpConnection server(pipe.b(), rcfg, rudp::Role::Server);

  install_tap(client, "client", sim);
  server.set_message_handler([&](const rudp::DeliveredMessage& m) {
    std::printf("%8.3f ms  server   ** delivered msg %u (%lld bytes, %s)\n",
                sim.now().to_seconds() * 1e3, m.msg_id,
                static_cast<long long>(m.bytes),
                m.marked ? "marked" : "unmarked");
  });

  server.listen();
  client.connect();
  sim.run_until(TimePoint::zero() + Duration::millis(200));

  std::printf("--- sending 3 marked + 2 unmarked messages over a 15%%-loss "
              "pipe ---\n");
  client.send_message({.bytes = 3000, .marked = true});
  client.send_message({.bytes = 1400, .marked = false});
  client.send_message({.bytes = 3000, .marked = true});
  client.send_message({.bytes = 1400, .marked = false});
  client.send_message({.bytes = 3000, .marked = true});
  sim.run_until(TimePoint::zero() + Duration::seconds(10));

  const auto& st = client.stats();
  std::printf("\nsummary: %llu data segments (%llu retransmitted, %llu "
              "skipped), %llu advances, %llu timeouts\n",
              static_cast<unsigned long long>(st.segments_sent),
              static_cast<unsigned long long>(st.segments_retransmitted),
              static_cast<unsigned long long>(st.segments_skipped),
              static_cast<unsigned long long>(st.advances_sent),
              static_cast<unsigned long long>(st.timeouts));
  return 0;
}
