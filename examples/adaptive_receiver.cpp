// Receiver-driven adaptation: the viewer changes its loss tolerance live.
//
// §2.1(3) of the paper: *both* the sender and the receiver adaptively
// control reliability. Here a visualization viewer watches a congested
// stream and toggles between "smooth" mode (tolerate 50% loss of unmarked
// frames for low latency) and "exact" mode (full reliability, e.g. while
// taking a measurement). The tolerance re-advertises mid-connection and the
// sender's skip behaviour follows it.
//
//   $ ./adaptive_receiver

#include <cstdio>
#include <memory>

#include "iq/core/iq_connection.hpp"
#include "iq/net/dumbbell.hpp"
#include "iq/net/sinks.hpp"
#include "iq/wire/sim_wire.hpp"
#include "iq/workload/cbr_source.hpp"

int main() {
  using namespace iq;

  sim::Simulator sim;
  net::Network network(sim);
  net::Dumbbell db(network, {.pairs = 2});

  // 18.5 Mb/s of cross traffic keeps the bottleneck tight.
  net::CountingSink cross_sink;
  db.right(1).bind(9000, &cross_sink);
  workload::CbrConfig cbr;
  cbr.rate_bps = 18'500'000;
  workload::CbrSource cross(network, db.left(1), db.right(1), cbr);
  cross.start();

  wire::SimWire wsnd(network, {db.left(0).id(), 30}, {db.right(0).id(), 30},
                     1);
  wire::SimWire wrcv(network, {db.right(0).id(), 30}, {db.left(0).id(), 30},
                     1);
  core::IqRudpConnection sender(wsnd, {}, rudp::Role::Client);
  rudp::RudpConfig rcfg;
  rcfg.recv_loss_tolerance = 0.5;  // start in smooth mode
  core::IqRudpConnection receiver(wrcv, rcfg, rudp::Role::Server);

  struct Window {
    int delivered = 0;
    int tagged = 0;
  } window;
  receiver.set_message_handler([&](const rudp::DeliveredMessage& m) {
    ++window.delivered;
    if (m.marked) ++window.tagged;
  });

  // Sender: 25 fps, every 5th frame is control data (marked).
  std::uint64_t frame = 0;
  sim::PeriodicTask source(sim, Duration::millis(40), [&] {
    if (!sender.established()) return;
    sender.send({.bytes = 12'000, .marked = (frame % 5 == 0)});
    ++frame;
  });

  receiver.listen();
  sender.set_established_handler([&] { source.start(/*fire_now=*/true); });
  sender.connect();

  auto report = [&](const char* mode, double start_s) {
    const auto& st = sender.transport().stats();
    std::printf("%-22s t=%4.0fs  delivered %3d frames this phase (%d "
                "control), sender skipped %llu msgs total, tolerance %.2f\n",
                mode, start_s, window.delivered, window.tagged,
                static_cast<unsigned long long>(st.messages_skipped),
                sender.transport().peer_recv_tolerance());
    window = Window{};
  };

  // Phase 1: smooth mode (tolerance 0.5) for 20 s.
  sim.run_until(TimePoint::zero() + Duration::seconds(20));
  report("phase 1: smooth (0.5)", 20);

  // Phase 2: the viewer needs exact data — full reliability.
  receiver.transport().set_local_recv_tolerance(0.0);
  sim.run_until(TimePoint::zero() + Duration::seconds(40));
  report("phase 2: exact (0.0)", 40);

  // Phase 3: back to smooth viewing.
  receiver.transport().set_local_recv_tolerance(0.5);
  sim.run_until(TimePoint::zero() + Duration::seconds(60));
  report("phase 3: smooth (0.5)", 60);

  source.stop();
  std::printf("\nthe sender's skip budget follows the receiver's advertised "
              "tolerance: skips occur in phases 1/3, none begin in phase 2.\n");
  return 0;
}
