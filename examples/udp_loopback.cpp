// The same protocol engine on real UDP sockets (loopback).
//
// Everything else in this repository runs on the deterministic simulator;
// this example shows the identical RudpConnection engine moving real
// datagrams through the kernel: handshake, fragmentation, acks and
// byte-exact wire encoding via the codec.
//
//   $ ./udp_loopback

#include <cstdio>
#include <vector>

#include "iq/rudp/connection.hpp"
#include "iq/wire/udp_wire.hpp"

int main() {
  using namespace iq;

  wire::RealtimeLoop loop;
  wire::UdpWire client_wire(loop, 47101, 47102);
  wire::UdpWire server_wire(loop, 47102, 47101);

  rudp::RudpConfig cfg;
  rudp::RudpConnection client(client_wire, cfg, rudp::Role::Client);
  rudp::RudpConnection server(server_wire, cfg, rudp::Role::Server);

  std::vector<rudp::DeliveredMessage> delivered;
  server.set_message_handler([&](const rudp::DeliveredMessage& m) {
    std::printf("  server: msg %u (%lld bytes) in %.2f ms\n", m.msg_id,
                static_cast<long long>(m.bytes),
                (m.delivered - m.first_sent).to_millis());
    delivered.push_back(m);
  });

  server.listen();
  client.connect();
  if (!loop.run_until([&] { return client.established(); },
                      Duration::seconds(5))) {
    std::printf("handshake failed\n");
    return 1;
  }
  std::printf("connected over 127.0.0.1 UDP\n");

  const int kMessages = 25;
  for (int i = 0; i < kMessages; ++i) {
    rudp::MessageSpec spec;
    spec.bytes = 32'000;  // 23 fragments each
    spec.attrs.set("index", std::int64_t{i});
    client.send_message(spec);
  }
  if (!loop.run_until(
          [&] { return delivered.size() == static_cast<std::size_t>(kMessages); },
          Duration::seconds(30))) {
    std::printf("transfer timed out (%zu/%d delivered)\n", delivered.size(),
                kMessages);
    return 1;
  }

  std::printf("\nall %d messages delivered.\n", kMessages);
  const auto& cs = client_wire.stats();
  const auto& ss = server_wire.stats();
  std::printf("datagrams: client sent %llu, server sent %llu (acks), "
              "decode failures %llu\n",
              static_cast<unsigned long long>(cs.datagrams_sent),
              static_cast<unsigned long long>(ss.datagrams_sent),
              static_cast<unsigned long long>(ss.decode_failures));
  std::printf("batching:  client sendmmsg %llu calls (max %llu/batch), "
              "server recvmmsg %llu calls (max %llu/batch)\n",
              static_cast<unsigned long long>(cs.send_batches),
              static_cast<unsigned long long>(cs.max_send_batch),
              static_cast<unsigned long long>(ss.recv_batches),
              static_cast<unsigned long long>(ss.max_recv_batch));
  return 0;
}
